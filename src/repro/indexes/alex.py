"""A compact ALEX: model-routed inner nodes over gapped-array data nodes.

ALEX (Figure 3 A of the paper) is the canonical updatable learned
index: inner nodes use a linear model to route to children; data nodes
store key-value pairs in *gapped arrays* — sorted arrays interleaved
with empty slots so inserts shift only to the nearest gap — and locate
keys by model prediction plus exponential search.  Nodes split when
they get too dense, growing the tree.

This implementation keeps those mechanics (gapped arrays, per-node
linear models, exponential search, splits, a leaf chain for scans)
at reduced engineering scale: routing corrections use the sorted
first-key array, and cost-based adaptive splitting is replaced by a
density threshold.  What the Section 3.3 study measures — pointer hops
per lookup, scatter during scans, slot overhead — is preserved.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.errors import IndexBuildError
from repro.indexes.linear import LinearModel, fit_endpoints
from repro.indexes.unclustered import UnclusteredIndex

_MAX_NODE_KEYS = 128
_TARGET_DENSITY = 0.7
_SPLIT_DENSITY = 0.9
_INNER_FANOUT = 64


def _fit_slots(keys: Sequence[int], capacity: int) -> LinearModel:
    """Model mapping a key to a slot in a gapped array of ``capacity``."""
    if len(keys) < 2 or keys[-1] == keys[0]:
        return LinearModel(0.0, capacity / 2.0)
    return fit_endpoints(float(keys[0]), 0.0, float(keys[-1]),
                         float(capacity - 1))


class _DataNode:
    """A gapped array of key-value pairs with a slot-prediction model."""

    __slots__ = ("slots", "model", "count", "next")

    def __init__(self, pairs: Sequence[Tuple[int, bytes]]) -> None:
        self.next: Optional["_DataNode"] = None
        self._rebuild_from(pairs)

    def _rebuild_from(self, pairs: Sequence[Tuple[int, bytes]]) -> None:
        """(Re)initialise slots and model from sorted pairs, in place."""
        capacity = max(8, int(len(pairs) / _TARGET_DENSITY))
        self.slots: List[Optional[Tuple[int, bytes]]] = [None] * capacity
        self.model = _fit_slots([key for key, _ in pairs], capacity)
        self.count = 0
        # Model-based placement: predict each key's slot, then enforce
        # strictly increasing slots (keys arrive sorted) with enough
        # room left for every remaining key — slot order always equals
        # key order, which scans rely on.
        n = len(pairs)
        desired = [max(0, min(int(self.model.predict(float(key))),
                              capacity - 1)) for key, _ in pairs]
        previous = -1
        for i in range(n):
            desired[i] = max(desired[i], previous + 1)
            previous = desired[i]
        for i in range(n - 1, -1, -1):
            limit = capacity - (n - i)
            if desired[i] > limit:
                desired[i] = limit
        previous = -1
        for i in range(n):
            desired[i] = max(desired[i], previous + 1)
            previous = desired[i]
        for (key, value), slot in zip(pairs, desired):
            self.slots[slot] = (key, value)
            self.count += 1

    # -- helpers ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return len(self.slots)

    @property
    def density(self) -> float:
        return self.count / self.capacity

    def min_key(self) -> int:
        for entry in self.slots:
            if entry is not None:
                return entry[0]
        raise IndexBuildError("empty ALEX data node")

    def pairs(self) -> List[Tuple[int, bytes]]:
        return [entry for entry in self.slots if entry is not None]

    def _predict_slot(self, key: int) -> int:
        slot = int(self.model.predict(float(key)))
        return max(0, min(slot, self.capacity - 1))

    def find(self, key: int, counters) -> Optional[bytes]:
        """Exponential search around the predicted slot."""
        slot = self._find_slot(key, counters)
        return self.slots[slot][1] if slot is not None else None

    def _find_slot(self, key: int, counters) -> Optional[int]:
        slot = self._predict_slot(key)
        probes = 0
        # Walk outward until we bracket the key among occupied slots.
        for offset in self._exponential_offsets():
            for candidate in (slot + offset, slot - offset):
                if 0 <= candidate < self.capacity:
                    probes += 1
                    entry = self.slots[candidate]
                    if entry is not None and entry[0] == key:
                        counters.slot_probes += probes
                        return candidate
            if offset > self.capacity:
                break
        counters.slot_probes += probes
        return None

    def overwrite(self, key: int, value: bytes, counters) -> bool:
        """Replace an existing key's value in place; False when absent."""
        slot = self._find_slot(key, counters)
        if slot is None:
            return False
        self.slots[slot] = (key, value)
        return True

    def _exponential_offsets(self):
        yield 0
        offset = 1
        while True:
            for step in range(offset, min(offset * 2, self.capacity + 1)):
                yield step
            offset *= 2
            if offset > self.capacity:
                return

    def insert(self, key: int, value: bytes, counters) -> bool:
        """Insert via predicted slot + shift to nearest gap.

        Returns False when the node should split first.
        """
        if self.density >= _SPLIT_DENSITY or self.count >= _MAX_NODE_KEYS:
            return False
        slot = self._predict_slot(key)
        # Find the correct sorted position around the prediction.
        insert_at = self._sorted_position(key, value, slot, counters)
        if insert_at is None:
            return True  # overwrote an existing entry in place
        gap = self._nearest_gap(insert_at)
        if gap is None:
            return False
        # Shift entries between the gap and the insertion point.  When
        # the gap is to the left, occupants below ``insert_at`` move
        # down one slot, so the new key lands at ``insert_at - 1`` —
        # still directly before the first larger key.
        if gap >= insert_at:
            for i in range(gap, insert_at, -1):
                self.slots[i] = self.slots[i - 1]
                counters.slot_probes += 1
            self.slots[insert_at] = (key, value)
        else:
            for i in range(gap, insert_at - 1):
                self.slots[i] = self.slots[i + 1]
                counters.slot_probes += 1
            self.slots[insert_at - 1] = (key, value)
        self.count += 1
        return True

    def _sorted_position(self, key: int, value: bytes, hint: int,
                         counters) -> Optional[int]:
        """Slot index where ``key`` belongs to keep slot order sorted.

        Overwrites in place (returning None) when the key already
        exists.
        """
        # Move left while the previous occupied key is larger; right
        # while the slot's occupied key is smaller.
        position = hint
        while position > 0:
            entry = self._prev_occupied(position - 1)
            if entry is None:
                break
            idx, (found, _) = entry
            counters.slot_probes += 1
            if found > key:
                position = idx
            elif found == key:
                self.slots[idx] = (key, value)
                return None
            else:
                break
        while position < self.capacity:
            entry = self.slots[position]
            if entry is None:
                return position
            counters.slot_probes += 1
            if entry[0] == key:
                self.slots[position] = (key, value)
                return None
            if entry[0] > key:
                return position
            position += 1
        # Larger than every occupied slot through the end: the logical
        # insertion point is past the array; the shift path below moves
        # occupants down into the nearest left gap.
        return self.capacity

    def _prev_occupied(self, start: int):
        for idx in range(start, -1, -1):
            if self.slots[idx] is not None:
                return idx, self.slots[idx]
        return None

    def _nearest_gap(self, position: int) -> Optional[int]:
        right = position
        while right < self.capacity and self.slots[right] is not None:
            right += 1
        left = position - 1
        while left >= 0 and self.slots[left] is not None:
            left -= 1
        if right < self.capacity and (left < 0
                                      or right - position <= position - left):
            return right
        if left >= 0:
            return left
        return right if right < self.capacity else None

    def split(self) -> Tuple["_DataNode", "_DataNode"]:
        """Split into two half-full nodes.

        The upper half moves to a fresh node; this node is rebuilt in
        place as the lower half, so leaf-chain predecessors (which
        still point here) stay correct without back-pointers.
        """
        pairs = self.pairs()
        mid = len(pairs) // 2
        right = _DataNode(pairs[mid:])
        right.next = self.next
        self._rebuild_from(pairs[:mid])
        self.next = right
        return self, right


class _InnerNode:
    """Model-routed inner node with a sorted first-key array."""

    __slots__ = ("first_keys", "children", "model")

    def __init__(self, first_keys: List[int], children: List[object]) -> None:
        self.first_keys = first_keys
        self.children = children
        self._refit()

    def _refit(self) -> None:
        n = len(self.first_keys)
        if n >= 2:
            self.model = fit_endpoints(float(self.first_keys[0]), 0.0,
                                       float(self.first_keys[-1]),
                                       float(n - 1))
        else:
            self.model = LinearModel(0.0, 0.0)

    def route(self, key: int, counters) -> int:
        """Predicted child index corrected by local search."""
        n = len(self.first_keys)
        idx = int(self.model.predict(float(key)))
        idx = max(0, min(idx, n - 1))
        counters.slot_probes += 1
        while idx + 1 < n and self.first_keys[idx + 1] <= key:
            idx += 1
            counters.slot_probes += 1
        while idx > 0 and self.first_keys[idx] > key:
            idx -= 1
            counters.slot_probes += 1
        return idx

    def replace_child(self, idx: int, left, right, split_key: int) -> None:
        """Install a split child pair."""
        self.children[idx:idx + 1] = [left, right]
        self.first_keys[idx:idx + 1] = [self.first_keys[idx], split_key]
        self._refit()

    @property
    def overflowing(self) -> bool:
        return len(self.children) > _INNER_FANOUT


class ALEXIndex(UnclusteredIndex):
    """The updatable, data-unclustered ALEX index."""

    def __init__(self) -> None:
        super().__init__()
        self._root: Optional[object] = None
        self._size = 0

    # -- construction ------------------------------------------------------

    def bulk_load(self, pairs: Sequence[Tuple[int, bytes]]) -> None:
        if not pairs:
            raise IndexBuildError("ALEX bulk_load needs at least one pair")
        chunk = max(8, _MAX_NODE_KEYS // 2)
        leaves: List[_DataNode] = []
        for start in range(0, len(pairs), chunk):
            leaves.append(_DataNode(pairs[start:start + chunk]))
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
        self._size = len(pairs)
        self._root = self._build_inner(leaves)

    def _build_inner(self, nodes: List[object]):
        while len(nodes) > 1:
            parents: List[object] = []
            for start in range(0, len(nodes), _INNER_FANOUT):
                group = nodes[start:start + _INNER_FANOUT]
                parents.append(_InnerNode(
                    [self._first_key(child) for child in group],
                    list(group)))
            nodes = parents
        return nodes[0]

    @staticmethod
    def _first_key(node) -> int:
        while isinstance(node, _InnerNode):
            node = node.children[0]
        return node.min_key()

    # -- operations -----------------------------------------------------------

    def _descend(self, key: int) -> Tuple[_DataNode, List[Tuple[_InnerNode, int]]]:
        path: List[Tuple[_InnerNode, int]] = []
        node = self._root
        while isinstance(node, _InnerNode):
            self.counters.node_hops += 1
            idx = node.route(key, self.counters)
            path.append((node, idx))
            node = node.children[idx]
        self.counters.node_hops += 1
        return node, path

    def get(self, key: int) -> Optional[bytes]:
        self.counters.operations += 1
        leaf, _ = self._descend(key)
        return leaf.find(key, self.counters)

    def insert(self, key: int, value: bytes) -> None:
        self.counters.operations += 1
        leaf, _ = self._descend(key)
        # Overwrites replace in place and never need a gap or a split.
        if leaf.overwrite(key, value, self.counters):
            return
        self._size += 1
        # Splits (and the occasional full rebuild they trigger) change
        # the structure, so re-descend after each one.
        for _ in range(8):
            leaf, path = self._descend(key)
            if leaf.insert(key, value, self.counters):
                return
            left, right = leaf.split()
            self._install_split(left, right, path)
        raise IndexBuildError("ALEX insert failed after repeated splits")

    def _install_split(self, left: _DataNode, right: _DataNode,
                       path) -> None:
        # ``left`` is the original node rebuilt in place, so the leaf
        # chain and the parent's child pointer are already correct;
        # only ``right`` needs installing.
        if path:
            parent, idx = path[-1]
            parent.replace_child(idx, left, right, right.min_key())
            if parent.overflowing:
                self._rebuild()
        else:
            self._root = _InnerNode(
                [left.min_key(), right.min_key()], [left, right])

    def _rebuild(self) -> None:
        """Full rebuild when an inner node overflows (simplified SMO)."""
        pairs = list(self._iter_pairs())
        self.bulk_load(pairs)

    def _first_leaf(self) -> _DataNode:
        node = self._root
        while isinstance(node, _InnerNode):
            node = node.children[0]
        return node

    def _iter_pairs(self):
        leaf = self._first_leaf()
        while leaf is not None:
            yield from leaf.pairs()
            leaf = leaf.next

    def range_scan(self, start_key: int,
                   count: int) -> List[Tuple[int, bytes]]:
        self.counters.operations += 1
        leaf, _ = self._descend(start_key)
        out: List[Tuple[int, bytes]] = []
        while leaf is not None and len(out) < count:
            for key, value in leaf.pairs():
                if key >= start_key and len(out) < count:
                    out.append((key, value))
                    self.counters.slot_probes += 1
            # Every leaf boundary is a pointer jump to a non-contiguous
            # node — the scatter cost clustered layouts avoid.
            leaf = leaf.next
            self.counters.scatter_jumps += 1
            self.counters.node_hops += 1
        return out

    # -- accounting -----------------------------------------------------------

    def memory_bytes(self) -> int:
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _InnerNode):
                total += len(node.first_keys) * 8 + len(node.children) * 8 + 16
                stack.extend(node.children)
            elif isinstance(node, _DataNode):
                total += node.capacity * 17 + 16  # slot ptr/key + model
        return total

    def __len__(self) -> int:
        return self._size

    def depth(self) -> int:
        """Tree depth (inner levels + leaf)."""
        depth = 1
        node = self._root
        while isinstance(node, _InnerNode):
            depth += 1
            node = node.children[0]
        return depth
