"""Linear and cubic models shared by every learned index.

All eight indexes the paper revisits bottom out in the same primitive:
a model mapping a key to an approximate position in a sorted array.
This module provides that primitive — plain slope/intercept lines with
least-squares and two-point fitting — plus the monotone cubic model RMI
implementations commonly use for root nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple


@dataclass(frozen=True)
class LinearModel:
    """A line ``position = slope * key + intercept``."""

    slope: float
    intercept: float

    def predict(self, key: float) -> float:
        """Approximate position for ``key`` (unclamped)."""
        return self.slope * key + self.intercept

    def predict_clamped(self, key: float, n: int) -> int:
        """Approximate integer position for ``key`` clamped to ``[0, n-1]``."""
        pos = int(self.predict(key))
        if pos < 0:
            return 0
        if pos >= n:
            return n - 1
        return pos

    def shifted(self, delta: float) -> "LinearModel":
        """A copy with ``delta`` added to the intercept."""
        return LinearModel(self.slope, self.intercept + delta)


def fit_endpoints(x0: float, y0: float, x1: float, y1: float) -> LinearModel:
    """Fit the line through two points; vertical input degrades to flat."""
    if x1 == x0:
        return LinearModel(0.0, (y0 + y1) / 2.0)
    slope = (y1 - y0) / (x1 - x0)
    return LinearModel(slope, y0 - slope * x0)


def fit_least_squares(xs: Sequence[float], ys: Sequence[float]) -> LinearModel:
    """Ordinary least-squares line fit.

    Runs in one pass with running sums — the same single-pass shape the
    paper's training cost accounting assumes.  Degenerate inputs (one
    point, or all-equal x) fall back to a flat line through the mean.
    """
    n = len(xs)
    if n == 0:
        return LinearModel(0.0, 0.0)
    if n == 1:
        return LinearModel(0.0, float(ys[0]))
    # Centre on the first x to keep the sums well-conditioned for large
    # 64-bit keys.
    x_base = float(xs[0])
    sum_x = 0.0
    sum_y = 0.0
    sum_xx = 0.0
    sum_xy = 0.0
    for x_raw, y in zip(xs, ys):
        x = float(x_raw) - x_base
        sum_x += x
        sum_y += y
        sum_xx += x * x
        sum_xy += x * y
    denom = n * sum_xx - sum_x * sum_x
    if denom == 0.0:
        return LinearModel(0.0, sum_y / n)
    slope = (n * sum_xy - sum_x * sum_y) / denom
    intercept = (sum_y - slope * sum_x) / n - slope * x_base
    return LinearModel(slope, intercept)


def max_abs_error(model: LinearModel, xs: Sequence[float],
                  ys: Sequence[float]) -> float:
    """Largest absolute residual of ``model`` over the points."""
    worst = 0.0
    for x, y in zip(xs, ys):
        err = abs(model.predict(float(x)) - y)
        if err > worst:
            worst = err
    return worst


def recenter(model: LinearModel, xs: Sequence[float],
             ys: Sequence[float]) -> Tuple[LinearModel, float]:
    """Shift the intercept so positive/negative residuals balance.

    Returns the recentred model and its max absolute residual.  Used by
    the corridor-based segmenters to convert a feasible line into one
    with the tightest symmetric error bound.
    """
    lo = float("inf")
    hi = float("-inf")
    for x, y in zip(xs, ys):
        resid = y - model.predict(float(x))
        if resid < lo:
            lo = resid
        if resid > hi:
            hi = resid
    if lo > hi:  # no points
        return model, 0.0
    shift = (lo + hi) / 2.0
    return model.shifted(shift), (hi - lo) / 2.0


@dataclass(frozen=True)
class CubicModel:
    """A cubic ``position = a k^3 + b k^2 + c k + d`` on normalised keys.

    RMI root models are often cubic; the key is normalised to ``[0, 1]``
    over the observed range before evaluation so the polynomial stays
    well conditioned on 64-bit keys.
    """

    a: float
    b: float
    c: float
    d: float
    key_min: float
    key_scale: float

    def predict(self, key: float) -> float:
        """Approximate position for ``key`` (unclamped)."""
        t = (key - self.key_min) * self.key_scale
        return ((self.a * t + self.b) * t + self.c) * t + self.d


def fit_cubic(xs: Sequence[float], ys: Sequence[float]) -> CubicModel:
    """Least-squares cubic over normalised keys.

    Uses the closed-form normal equations on a 4x4 system; falls back to
    a linear fit when the system is singular (e.g. tiny inputs).
    """
    n = len(xs)
    if n < 4:
        line = fit_least_squares(xs, ys)
        key_min = float(xs[0]) if n else 0.0
        return CubicModel(0.0, 0.0, line.slope, line.intercept + line.slope * key_min,
                          key_min, 1.0) if False else _cubic_from_line(line, xs)
    key_min = float(xs[0])
    key_max = float(xs[-1])
    scale = 1.0 / (key_max - key_min) if key_max > key_min else 1.0

    # Accumulate the moments needed by the 4x4 normal equations.
    s = [0.0] * 7      # sum t^0 .. t^6
    sy = [0.0] * 4     # sum y * t^0 .. t^3
    for x, y in zip(xs, ys):
        t = (float(x) - key_min) * scale
        tp = 1.0
        for power in range(7):
            s[power] += tp
            if power < 4:
                sy[power] += y * tp
            tp *= t

    # Solve M @ coeffs = sy where M[i][j] = s[i + j] via Gaussian
    # elimination with partial pivoting.
    matrix = [[s[i + j] for j in range(4)] + [sy[i]] for i in range(4)]
    for col in range(4):
        pivot = max(range(col, 4), key=lambda r: abs(matrix[r][col]))
        if abs(matrix[pivot][col]) < 1e-12:
            line = fit_least_squares(xs, ys)
            return _cubic_from_line(line, xs)
        matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
        for row in range(col + 1, 4):
            factor = matrix[row][col] / matrix[col][col]
            for k in range(col, 5):
                matrix[row][k] -= factor * matrix[col][k]
    coeffs = [0.0] * 4
    for row in range(3, -1, -1):
        acc = matrix[row][4]
        for k in range(row + 1, 4):
            acc -= matrix[row][k] * coeffs[k]
        coeffs[row] = acc / matrix[row][row]
    d, c, b, a = coeffs
    return CubicModel(a, b, c, d, key_min, scale)


def _cubic_from_line(line: LinearModel, xs: Sequence[float]) -> CubicModel:
    """Wrap a linear model in the cubic container (degenerate inputs)."""
    key_min = float(xs[0]) if len(xs) else 0.0
    # position = slope * key + intercept = slope * (t / scale + key_min) + i
    # with scale = 1 => c = slope, d = slope * key_min + intercept.
    return CubicModel(0.0, 0.0, line.slope, line.intercept + line.slope * key_min,
                      key_min, 1.0)
