"""Classic fence pointers — the paper's baseline index ("FP").

A fence pointer stores the first key of every fixed-size run of
entries (a "data block" in LevelDB terms).  A lookup binary-searches
the pointer array and reads the single block it lands on, so the
position boundary *is* the block's entry count.  The paper varies the
LevelDB data-block size to sweep FP across position boundaries; here
the block entry count is the constructor parameter directly.

Memory grows linearly in ``n / boundary`` with a full key + offset per
pointer (16 bytes here, matching LevelDB's index entries), which is why
Figure 6 shows FP with the steepest memory curve of all index types.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import IndexBuildError
from repro.indexes import codec
from repro.indexes.base import ClusteredIndex, SearchBound, floor_index
from repro.storage.cost_model import CostModel

FENCE_TAG = 1


class FencePointerIndex(ClusteredIndex):
    """First-key-per-block index with binary search (LevelDB style)."""

    kind = "FP"

    def __init__(self, block_entries: int) -> None:
        super().__init__()
        if block_entries < 1:
            raise IndexBuildError(
                f"FP block_entries must be >= 1, got {block_entries}")
        self.block_entries = block_entries
        self._pointers: List[int] = []
        self._offsets: List[int] = []

    def _fit(self, keys: Sequence[int]) -> None:
        step = self.block_entries
        self._pointers = [keys[i] for i in range(0, len(keys), step)]
        self._offsets = list(range(0, len(keys), step))
        # Fence construction touches one key per block; the remaining
        # keys stream past untouched (they are being written anyway).
        self._record_visits(len(self._pointers))

    def _predict(self, key: int) -> SearchBound:
        idx = floor_index(self._pointers, key)
        lo = idx * self.block_entries
        return SearchBound(lo, lo + self.block_entries)

    def configured_boundary(self) -> int:
        return self.block_entries

    def expected_lookup_cost_us(self, cost: CostModel) -> float:
        return cost.binary_search_us(max(1, len(self._pointers)))

    def pointer_count(self) -> int:
        """Number of fence pointers (one per data block)."""
        return len(self._pointers)

    def describe(self) -> dict:
        """Base summary plus the pointer count."""
        info = super().describe()
        info["pointers"] = len(self._pointers)
        return info

    def serialize(self) -> bytes:
        writer = codec.Writer()
        writer.put_u8(FENCE_TAG)
        writer.put_u32(self.block_entries)
        writer.put_u64(self._n)
        writer.put_u64_array(self._pointers)
        writer.put_u64_array(self._offsets)
        return writer.getvalue()

    @classmethod
    def deserialize(cls, reader: codec.Reader) -> "FencePointerIndex":
        """Rebuild from a :class:`codec.Reader` positioned after the tag."""
        block_entries = reader.get_u32()
        n = reader.get_u64()
        index = cls(block_entries)
        index._pointers = reader.get_u64_array()
        index._offsets = reader.get_u64_array()
        index._n = n
        index._built = True
        return index
