"""A compact DILI: distribution-driven tree with linear-model nodes.

DILI (Section 3.2 of the paper) builds its index in two phases: a
bottom-up pass creates leaf nodes from local key distributions, then a
top-down refinement sizes each internal node's fanout to its local
distribution so that hot, dense regions get wide nodes (shallow paths)
and sparse regions stay narrow.  Every node routes with a linear model;
leaves hold the key-value pairs.

This implementation keeps the two-phase construction and the
distribution-driven fanout at reduced scale:

* phase 1 groups keys into leaves whose span tracks local density
  (dense regions -> more, smaller leaves);
* phase 2 builds internal nodes whose fanout is proportional to the
  number of distinct child regions under them, balancing leaf count
  against height exactly as the paper describes.

Like ALEX and LIPP it is *data-unclustered*: pairs live inside node
payloads, so it joins them in the Section 3.3 compatibility study
rather than plugging into SSTables.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.errors import IndexBuildError
from repro.indexes.linear import LinearModel, fit_endpoints
from repro.indexes.unclustered import UnclusteredIndex

#: Target keys per leaf before density adjustment.
_BASE_LEAF_KEYS = 64
#: Internal fanout bounds for the top-down refinement.
_MIN_FANOUT = 4
_MAX_FANOUT = 256


class _DiliLeaf:
    """A sorted run of pairs with a local prediction model."""

    __slots__ = ("keys", "values", "model", "next")

    def __init__(self, pairs: Sequence[Tuple[int, bytes]]) -> None:
        self.keys: List[int] = [key for key, _ in pairs]
        self.values: List[bytes] = [value for _, value in pairs]
        self.model = self._fit()
        self.next: Optional["_DiliLeaf"] = None

    def _fit(self) -> LinearModel:
        if len(self.keys) >= 2 and self.keys[-1] > self.keys[0]:
            return fit_endpoints(float(self.keys[0]), 0.0,
                                 float(self.keys[-1]),
                                 float(len(self.keys) - 1))
        return LinearModel(0.0, 0.0)

    def min_key(self) -> int:
        return self.keys[0]

    def find(self, key: int, counters) -> Optional[bytes]:
        idx = self._locate(key, counters)
        if idx is not None:
            return self.values[idx]
        return None

    def _locate(self, key: int, counters) -> Optional[int]:
        n = len(self.keys)
        idx = self.model.predict_clamped(float(key), n)
        counters.slot_probes += 1
        while idx > 0 and self.keys[idx] > key:
            idx -= 1
            counters.slot_probes += 1
        while idx + 1 < n and self.keys[idx + 1] <= key:
            idx += 1
            counters.slot_probes += 1
        return idx if self.keys[idx] == key else None

    def insert(self, key: int, value: bytes, counters) -> bool:
        """Insert keeping order; returns True when a new key was added."""
        idx = bisect_right(self.keys, key)
        counters.slot_probes += 1
        if idx > 0 and self.keys[idx - 1] == key:
            self.values[idx - 1] = value
            return False
        self.keys.insert(idx, key)
        self.values.insert(idx, value)
        self.model = self._fit()
        return True

    def should_split(self) -> bool:
        return len(self.keys) > 2 * _BASE_LEAF_KEYS

    def split(self) -> "_DiliLeaf":
        """Move the upper half to a fresh leaf; self keeps the lower."""
        mid = len(self.keys) // 2
        upper = _DiliLeaf(list(zip(self.keys[mid:], self.values[mid:])))
        self.keys = self.keys[:mid]
        self.values = self.values[:mid]
        self.model = self._fit()
        upper.next = self.next
        self.next = upper
        return upper


class _DiliInner:
    """An internal node with distribution-sized fanout."""

    __slots__ = ("first_keys", "children", "model")

    def __init__(self, first_keys: List[int], children: List[object]) -> None:
        self.first_keys = first_keys
        self.children = children
        n = len(first_keys)
        if n >= 2 and first_keys[-1] > first_keys[0]:
            self.model = fit_endpoints(float(first_keys[0]), 0.0,
                                       float(first_keys[-1]), float(n - 1))
        else:
            self.model = LinearModel(0.0, 0.0)

    def route(self, key: int, counters) -> int:
        n = len(self.first_keys)
        idx = self.model.predict_clamped(float(key), n)
        counters.slot_probes += 1
        while idx + 1 < n and self.first_keys[idx + 1] <= key:
            idx += 1
            counters.slot_probes += 1
        while idx > 0 and self.first_keys[idx] > key:
            idx -= 1
            counters.slot_probes += 1
        return idx


class DILIIndex(UnclusteredIndex):
    """Two-phase, distribution-driven learned index (unclustered)."""

    def __init__(self) -> None:
        super().__init__()
        self._root: Optional[object] = None
        self._size = 0

    # -- construction ------------------------------------------------------

    def bulk_load(self, pairs: Sequence[Tuple[int, bytes]]) -> None:
        if not pairs:
            raise IndexBuildError("DILI bulk_load needs at least one pair")
        self._size = len(pairs)
        leaves = self._phase1_leaves(pairs)
        for left, right in zip(leaves, leaves[1:]):
            left.next = right
        self._root = self._phase2_tree(leaves)

    def _phase1_leaves(self,
                       pairs: Sequence[Tuple[int, bytes]]) -> List[_DiliLeaf]:
        """Bottom-up: leaf spans track local density.

        Dense regions (small key gaps) produce smaller leaves so their
        local models stay precise; sparse regions produce larger ones.
        """
        n = len(pairs)
        if n <= _BASE_LEAF_KEYS:
            return [_DiliLeaf(pairs)]
        keys = [key for key, _ in pairs]
        span = max(1, keys[-1] - keys[0])
        leaves: List[_DiliLeaf] = []
        start = 0
        while start < n:
            end = min(n, start + _BASE_LEAF_KEYS)
            # Local density relative to uniform: gap of this window vs
            # the average gap.  Dense window (< avg gap) -> shrink the
            # leaf; sparse -> grow it, bounded either way.
            window_span = keys[min(end, n - 1)] - keys[start]
            expected_span = span * (end - start) / n
            if window_span > 0 and expected_span > 0:
                ratio = window_span / expected_span
                size = int(_BASE_LEAF_KEYS * min(2.0, max(0.5, ratio)))
                end = min(n, start + max(8, size))
            leaves.append(_DiliLeaf(pairs[start:end]))
            start = end
        return leaves

    def _phase2_tree(self, nodes: List[object]) -> object:
        """Top-down refinement: fanout follows the child-count locally."""
        while len(nodes) > 1:
            total = len(nodes)
            # Balance height against node width: fanout ~ sqrt of the
            # remaining children, clamped to the configured range.
            fanout = max(_MIN_FANOUT, min(_MAX_FANOUT, int(total ** 0.5) + 1))
            parents: List[object] = []
            for start in range(0, total, fanout):
                group = nodes[start:start + fanout]
                parents.append(_DiliInner(
                    [self._first_key(child) for child in group],
                    list(group)))
            nodes = parents
        return nodes[0]

    @staticmethod
    def _first_key(node) -> int:
        while isinstance(node, _DiliInner):
            node = node.children[0]
        return node.min_key()

    # -- operations -----------------------------------------------------------

    def _descend(self, key: int) -> _DiliLeaf:
        node = self._root
        if node is None:
            raise IndexBuildError("DILI used before bulk_load")
        while isinstance(node, _DiliInner):
            self.counters.node_hops += 1
            node = node.children[node.route(key, self.counters)]
        self.counters.node_hops += 1
        return node

    def get(self, key: int) -> Optional[bytes]:
        self.counters.operations += 1
        return self._descend(key).find(key, self.counters)

    def insert(self, key: int, value: bytes) -> None:
        self.counters.operations += 1
        leaf = self._descend(key)
        if leaf.insert(key, value, self.counters):
            self._size += 1
        if leaf.should_split():
            # Flexible structure adjustment: rebuild the routing tree
            # over the (cheaply) split leaves.
            leaf.split()
            leaves = []
            node = self._first_leaf()
            while node is not None:
                leaves.append(node)
                node = node.next
            self._root = self._phase2_tree(list(leaves))

    def _first_leaf(self) -> _DiliLeaf:
        node = self._root
        while isinstance(node, _DiliInner):
            node = node.children[0]
        return node

    def range_scan(self, start_key: int,
                   count: int) -> List[Tuple[int, bytes]]:
        self.counters.operations += 1
        leaf = self._descend(start_key)
        out: List[Tuple[int, bytes]] = []
        idx = bisect_right(leaf.keys, start_key - 1)
        while leaf is not None and len(out) < count:
            while idx < len(leaf.keys) and len(out) < count:
                out.append((leaf.keys[idx], leaf.values[idx]))
                idx += 1
            leaf = leaf.next
            idx = 0
            self.counters.scatter_jumps += 1
            self.counters.node_hops += 1
        return out

    # -- accounting -----------------------------------------------------------

    def memory_bytes(self) -> int:
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, _DiliInner):
                total += len(node.first_keys) * 16 + 16
                stack.extend(node.children)
            elif isinstance(node, _DiliLeaf):
                total += len(node.keys) * 16 + 16
        return total

    def __len__(self) -> int:
        return self._size

    def depth(self) -> int:
        """Routing depth (inner levels + leaf)."""
        depth = 1
        node = self._root
        while isinstance(node, _DiliInner):
            depth += 1
            node = node.children[0]
        return depth
