"""A compact LIPP: precise-position nodes with conflict child nodes.

LIPP (Figure 3 B of the paper) removes the "last mile" search
entirely: each node's linear model maps a key to *exactly one slot*.
A slot is NULL (empty), DATA (holds one key-value pair) or NODE
(points to a child built from the keys that collided there).  Lookups
never search — they follow at most ``depth`` pointers; inserts either
fill a NULL slot, or convert a DATA slot into a child node holding
both conflicting keys.

The original uses the FMCD algorithm to pick node models minimising
conflicts; this implementation fits the model over the node's key
range with a configurable slot-per-key expansion, which is FMCD's
behaviour for near-uniform key subsets and preserves everything the
Section 3.3 study measures: pointer-chased lookups, scattered storage,
and memory paid for empty slots.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import IndexBuildError
from repro.indexes.unclustered import UnclusteredIndex

#: Slots allocated per key when building a node (the gap factor).
_EXPANSION = 2.0
_MIN_SLOTS = 8
_MAX_DEPTH = 32

# Slot kinds.
_NULL = 0
_DATA = 1
_NODE = 2


class _LippNode:
    """One LIPP node: a linear slot mapping plus a slot array.

    The slot mapping is evaluated in exact integer arithmetic (floats
    would collapse adjacent 64-bit keys onto one slot forever); any two
    distinct keys therefore separate after at most one conflict level,
    and multi-key conflicts shrink their key span geometrically.
    """

    __slots__ = ("key_min", "key_span", "kinds", "payload", "size")

    def __init__(self, pairs: Sequence[Tuple[int, bytes]],
                 depth: int = 1) -> None:
        if depth > _MAX_DEPTH:
            raise IndexBuildError("LIPP node depth exceeded the safety cap")
        n_slots = max(_MIN_SLOTS, int(len(pairs) * _EXPANSION))
        keys = [key for key, _ in pairs]
        self.key_min = keys[0]
        self.key_span = max(1, keys[-1] - keys[0])
        self.kinds = bytearray(n_slots)
        self.payload: List[Optional[object]] = [None] * n_slots
        self.size = len(pairs)
        # Group colliding keys per slot, then place.
        buckets: dict = {}
        for key, value in pairs:
            buckets.setdefault(self._slot(key), []).append((key, value))
        for slot, bucket in buckets.items():
            if len(bucket) == 1:
                self.kinds[slot] = _DATA
                self.payload[slot] = bucket[0]
            else:
                self.kinds[slot] = _NODE
                self.payload[slot] = _LippNode(bucket, depth + 1)

    def _slot(self, key: int) -> int:
        if key <= self.key_min:
            return 0
        offset = key - self.key_min
        if offset >= self.key_span:
            return len(self.kinds) - 1
        return (offset * (len(self.kinds) - 1)) // self.key_span

    # -- operations -----------------------------------------------------

    def get(self, key: int, counters) -> Optional[bytes]:
        slot = self._slot(key)
        counters.slot_probes += 1
        kind = self.kinds[slot]
        if kind == _NULL:
            return None
        if kind == _DATA:
            found_key, value = self.payload[slot]
            return value if found_key == key else None
        counters.node_hops += 1
        return self.payload[slot].get(key, counters)

    def insert(self, key: int, value: bytes, counters,
               depth: int = 1) -> bool:
        """Insert; returns True when a *new* key was added."""
        slot = self._slot(key)
        counters.slot_probes += 1
        kind = self.kinds[slot]
        if kind == _NULL:
            self.kinds[slot] = _DATA
            self.payload[slot] = (key, value)
            self.size += 1
            return True
        if kind == _DATA:
            found_key, _ = self.payload[slot]
            if found_key == key:
                self.payload[slot] = (key, value)
                return False
            # Build a child node from both conflicting pairs, sorted.
            pairs = sorted([self.payload[slot], (key, value)])
            child = _LippNode(pairs, depth + 1)
            self.kinds[slot] = _NODE
            self.payload[slot] = child
            self.size += 1
            return True
        counters.node_hops += 1
        added = self.payload[slot].insert(key, value, counters, depth + 1)
        if added:
            self.size += 1
        return added

    def iter_from(self, start_key: int, counters):
        """Yield pairs with key >= start_key in order (DFS over slots)."""
        for slot in range(self._slot(start_key), len(self.kinds)):
            kind = self.kinds[slot]
            if kind == _NULL:
                continue
            if kind == _DATA:
                key, value = self.payload[slot]
                if key >= start_key:
                    yield key, value
            else:
                counters.node_hops += 1
                counters.scatter_jumps += 1
                yield from self.payload[slot].iter_from(start_key, counters)

    def memory_bytes(self) -> int:
        total = 16 + len(self.kinds) * 9  # model + kind byte + payload ptr
        for kind, payload in zip(self.kinds, self.payload):
            if kind == _DATA:
                total += 16
            elif kind == _NODE:
                total += payload.memory_bytes()
        return total

    def max_depth(self) -> int:
        deepest = 1
        for kind, payload in zip(self.kinds, self.payload):
            if kind == _NODE:
                deepest = max(deepest, 1 + payload.max_depth())
        return deepest


class LIPPIndex(UnclusteredIndex):
    """The updatable, precise-position LIPP index."""

    def __init__(self) -> None:
        super().__init__()
        self._root: Optional[_LippNode] = None

    def bulk_load(self, pairs: Sequence[Tuple[int, bytes]]) -> None:
        if not pairs:
            raise IndexBuildError("LIPP bulk_load needs at least one pair")
        self._root = _LippNode(list(pairs))

    def _require_root(self) -> _LippNode:
        if self._root is None:
            raise IndexBuildError("LIPP used before bulk_load")
        return self._root

    def get(self, key: int) -> Optional[bytes]:
        self.counters.operations += 1
        self.counters.node_hops += 1  # root access
        return self._require_root().get(key, self.counters)

    def insert(self, key: int, value: bytes) -> None:
        self.counters.operations += 1
        self.counters.node_hops += 1
        self._require_root().insert(key, value, self.counters)

    def range_scan(self, start_key: int,
                   count: int) -> List[Tuple[int, bytes]]:
        self.counters.operations += 1
        self.counters.node_hops += 1
        out: List[Tuple[int, bytes]] = []
        for key, value in self._require_root().iter_from(start_key,
                                                         self.counters):
            out.append((key, value))
            if len(out) >= count:
                break
        return out

    def memory_bytes(self) -> int:
        return self._require_root().memory_bytes() if self._root else 0

    def __len__(self) -> int:
        return self._root.size if self._root else 0

    def depth(self) -> int:
        """Maximum node depth (pointer chain length)."""
        return self._require_root().max_depth()
