"""Segmentation algorithms behind the data-clustered learned indexes.

Three algorithms from the paper's Section 3.1, all one-pass over a
strictly-increasing key array and all guaranteeing a maximum prediction
error ``epsilon``:

* :func:`greedy_corridor_segments` — the greedy slope-corridor used by
  Bourbon's PLR and by FITing-Tree's shrinking cone.  Each segment's
  line is anchored at the segment's first point, and the feasible slope
  interval narrows as points arrive; when it empties, a new segment
  starts.
* :func:`optimal_pla_segments` — the optimal piecewise-linear
  approximation used by the PGM-index (O'Rourke's on-line algorithm).
  It maintains the exact feasible set of lines via two convex hulls and
  therefore produces the *minimum* number of segments for a given
  epsilon — this is precisely why the paper finds PGM's memory-latency
  trade-off superior to greedy segmentation.
* :func:`greedy_spline_points` — the GreedySplineCorridor of
  RadixSpline/PLEX: instead of free lines it selects a subset of data
  points as spline knots such that linear interpolation between
  consecutive knots stays within epsilon.

All functions return the number of *key visits* they performed so
callers can charge training cost (Figure 9's compaction breakdown).

Numerical notes: keys may span the full 64-bit range, so all slope
arithmetic is done on deltas from the segment's first key; predictions
evaluate ``slope * key + intercept`` whose cancellation error is far
below 1 position for realistic table sizes (see tests).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.indexes.base import Segment

_INF = float("inf")


# ---------------------------------------------------------------------------
# Greedy corridor (PLR / FITing-Tree)
# ---------------------------------------------------------------------------

def greedy_corridor_segments(
        keys: Sequence[int], epsilon: int) -> Tuple[List[Segment], int]:
    """Greedy segmentation with lines anchored at segment origins.

    Guarantees ``|predict(key_i) - i| <= epsilon`` for every key in a
    segment.  Returns ``(segments, key_visits)``.
    """
    n = len(keys)
    segments: List[Segment] = []
    start = 0
    while start < n:
        x0 = keys[start]
        y0 = start
        slope_lo = -_INF
        slope_hi = _INF
        end = start + 1
        while end < n:
            dx = float(keys[end] - x0)
            lo = (end - epsilon - y0) / dx
            hi = (end + epsilon - y0) / dx
            new_lo = slope_lo if slope_lo > lo else lo
            new_hi = slope_hi if slope_hi < hi else hi
            if new_lo > new_hi:
                break
            slope_lo, slope_hi = new_lo, new_hi
            end += 1
        if end == start + 1:  # single-point segment
            slope = 0.0
        elif slope_lo == -_INF:  # unreachable, defensive
            slope = 0.0
        else:
            slope = (slope_lo + slope_hi) / 2.0
        # The line is anchored at the segment origin: intercept is the
        # position at first_key (Segment.predict evaluates on offsets).
        segments.append(Segment(first_key=x0, slope=slope,
                                intercept=float(y0), start=start,
                                length=end - start))
        start = end
    return segments, n


# ---------------------------------------------------------------------------
# Optimal PLA (PGM-index)
# ---------------------------------------------------------------------------

def _cross(ox: float, oy: float, ax: float, ay: float,
           bx: float, by: float) -> float:
    """2D cross product of (a - o) x (b - o)."""
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)


def _slope_to(px: float, py: float, qx: float, qy: float) -> float:
    """Slope of the line from (px, py) to (qx, qy).

    Distinct 64-bit keys can collapse to the same float; treat such
    pairs as vertical: an upward vertical constraint is unsatisfiable
    (+inf forces the segment closed), a downward one is vacuous (-inf).
    """
    if qx == px:
        if qy > py:
            return _INF
        if qy < py:
            return -_INF
        return 0.0
    return (qy - py) / (qx - px)


def _tangent_extreme(hull: List[Tuple[float, float]], px: float, py: float,
                     want_max: bool) -> float:
    """Extreme slope from hull vertices to an external right point.

    Over a convex chain the slope to a point right of every vertex is
    unimodal, so a binary search on adjacent-vertex comparisons finds
    the max (lower hull) or min (upper hull) in O(log h).
    """
    lo = 0
    hi = len(hull) - 1
    while lo < hi:
        mid = (lo + hi) // 2
        s_mid = _slope_to(hull[mid][0], hull[mid][1], px, py)
        s_next = _slope_to(hull[mid + 1][0], hull[mid + 1][1], px, py)
        if want_max:
            better_right = s_next > s_mid
        else:
            better_right = s_next < s_mid
        if better_right:
            lo = mid + 1
        else:
            hi = mid
    return _slope_to(hull[lo][0], hull[lo][1], px, py)


def _push_upper(hull: List[Tuple[float, float]], x: float, y: float) -> None:
    """Append to an upper hull (clockwise turns), popping dominated points."""
    while len(hull) >= 2 and _cross(hull[-2][0], hull[-2][1],
                                    hull[-1][0], hull[-1][1], x, y) >= 0:
        hull.pop()
    hull.append((x, y))


def _push_lower(hull: List[Tuple[float, float]], x: float, y: float) -> None:
    """Append to a lower hull (counter-clockwise turns)."""
    while len(hull) >= 2 and _cross(hull[-2][0], hull[-2][1],
                                    hull[-1][0], hull[-1][1], x, y) <= 0:
        hull.pop()
    hull.append((x, y))


def optimal_pla_segments(
        keys: Sequence[int], epsilon: int) -> Tuple[List[Segment], int]:
    """Optimal epsilon-bounded segmentation (O'Rourke / PGM).

    Maintains, per segment, the exact feasible slope interval
    ``[s_min, s_max]`` of lines that stay within ``±epsilon`` of every
    point seen so far, using the upper hull of ``(x, y - eps)`` and the
    lower hull of ``(x, y + eps)``.  A point is accepted iff the
    interval stays non-empty, which yields the minimal segment count.

    Returns ``(segments, key_visits)``.
    """
    n = len(keys)
    segments: List[Segment] = []
    start = 0
    while start < n:
        x0 = keys[start]
        # Hulls over delta-x coordinates for numerical stability.
        hull_a: List[Tuple[float, float]] = [(0.0, float(start - epsilon))]
        hull_b: List[Tuple[float, float]] = [(0.0, float(start + epsilon))]
        s_min = -_INF
        s_max = _INF
        end = start + 1
        while end < n:
            dx = float(keys[end] - x0)
            a_y = float(end - epsilon)
            b_y = float(end + epsilon)
            # Lower bound on slope: steepest line from an earlier upper
            # point (B) to this point's lower requirement (A).
            cand_min = _tangent_extreme(hull_b, dx, a_y, want_max=True)
            # Upper bound: shallowest line from an earlier lower point
            # (A) to this point's upper allowance (B).
            cand_max = _tangent_extreme(hull_a, dx, b_y, want_max=False)
            new_min = s_min if s_min > cand_min else cand_min
            new_max = s_max if s_max < cand_max else cand_max
            if new_min > new_max:
                break
            s_min, s_max = new_min, new_max
            _push_upper(hull_a, dx, a_y)
            _push_lower(hull_b, dx, b_y)
            end += 1
        if end == start + 1:
            slope = 0.0
            intercept_dx = float(start)
        else:
            if s_min == -_INF:
                slope = 0.0
            elif s_max == _INF:
                slope = s_min
            else:
                slope = (s_min + s_max) / 2.0
            # The feasible intercepts at this slope form an interval:
            # at least the lowest line above every A-requirement (its
            # binding vertex lies on the upper hull of A) and at most
            # the highest line below every B-allowance (binding vertex
            # on the lower hull of B).  Take the midpoint.
            b_low = max(y - slope * x for x, y in hull_a)
            b_high = min(y - slope * x for x, y in hull_b)
            intercept_dx = (b_low + b_high) / 2.0
        # Hull coordinates are already offsets from first_key, so the
        # dx-space intercept is exactly Segment's anchored intercept.
        segments.append(Segment(first_key=x0, slope=slope,
                                intercept=intercept_dx,
                                start=start, length=end - start))
        start = end
    return segments, n


# ---------------------------------------------------------------------------
# Greedy spline (RadixSpline / PLEX)
# ---------------------------------------------------------------------------

def greedy_spline_points(
        keys: Sequence[int], epsilon: int) -> Tuple[List[Tuple[int, int]], int]:
    """GreedySplineCorridor: pick knots so interpolation stays in epsilon.

    Returns ``(spline_points, key_visits)`` where spline points are
    ``(key, position)`` pairs including the first and last key.  For
    any query between two knots, linear interpolation predicts a
    position within ``epsilon`` of the truth for every indexed key.
    """
    n = len(keys)
    if n == 1:
        return [(keys[0], 0)], 1
    points: List[Tuple[int, int]] = [(keys[0], 0)]
    base_x = keys[0]
    base_y = 0
    slope_lo = -_INF
    slope_hi = _INF
    for i in range(1, n):
        dx = float(keys[i] - base_x)
        exact = (i - base_y) / dx
        if exact < slope_lo or exact > slope_hi:
            # The chord to this point would violate an interior
            # corridor: the previous point becomes a knot.
            knot_x, knot_y = keys[i - 1], i - 1
            points.append((knot_x, knot_y))
            base_x, base_y = knot_x, knot_y
            dx = float(keys[i] - base_x)
            slope_lo = (i - epsilon - base_y) / dx
            slope_hi = (i + epsilon - base_y) / dx
        else:
            lo = (i - epsilon - base_y) / dx
            hi = (i + epsilon - base_y) / dx
            if lo > slope_lo:
                slope_lo = lo
            if hi < slope_hi:
                slope_hi = hi
    if points[-1][0] != keys[-1]:
        points.append((keys[-1], n - 1))
    return points, n


def verify_segments(keys: Sequence[int], segments: List[Segment],
                    epsilon: int) -> float:
    """Return the max absolute prediction error of a segmentation.

    Test helper: scans every key against its covering segment.  The
    result should never exceed ``epsilon`` (plus a whisker of float
    round-off).
    """
    worst = 0.0
    for segment in segments:
        for pos in range(segment.start, segment.start + segment.length):
            err = abs(segment.predict(keys[pos]) - pos)
            if err > worst:
                worst = err
    return worst
