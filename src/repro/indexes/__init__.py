"""Learned indexes for LSM-trees: the eight structures the paper revisits.

Data-clustered indexes (pluggable into SSTables):

* :class:`~repro.indexes.fence.FencePointerIndex` — the classic baseline.
* :class:`~repro.indexes.plr.PLRIndex` — Bourbon's greedy piecewise
  linear regression.
* :class:`~repro.indexes.fiting_tree.FITingTreeIndex` — greedy segments
  behind a B+-tree.
* :class:`~repro.indexes.pgm.PGMIndex` — recursive optimal PLA.
* :class:`~repro.indexes.radix_spline.RadixSplineIndex` — spline knots
  behind a radix table.
* :class:`~repro.indexes.plex.PLEXIndex` — spline knots behind a
  self-tuned Compact Hist-Tree.
* :class:`~repro.indexes.rmi.RMIIndex` — two-layer recursive model index.

Data-unclustered indexes (in-memory, for the Section 3.3 compatibility
study): :mod:`repro.indexes.alex`, :mod:`repro.indexes.lipp`,
:mod:`repro.indexes.dili` and :mod:`repro.indexes.nfl`.
"""

from repro.indexes.alex import ALEXIndex
from repro.indexes.base import ClusteredIndex, SearchBound, Segment
from repro.indexes.dili import DILIIndex
from repro.indexes.lipp import LIPPIndex
from repro.indexes.nfl import NFLIndex, NumericalFlow
from repro.indexes.unclustered import AccessCounters, UnclusteredIndex
from repro.indexes.btree import BPlusTree
from repro.indexes.fence import FencePointerIndex
from repro.indexes.fiting_tree import FITingTreeIndex
from repro.indexes.pgm import PGMIndex
from repro.indexes.plex import CompactHistTree, PLEXIndex
from repro.indexes.plr import PLRIndex
from repro.indexes.radix_spline import RadixSplineIndex
from repro.indexes.registry import (
    ALL_KINDS,
    LEARNED_KINDS,
    IndexFactory,
    IndexKind,
    deserialize_index,
    kind_from_name,
)
from repro.indexes.rmi import RMIIndex, RmiTuningCache

__all__ = [
    "ClusteredIndex",
    "SearchBound",
    "Segment",
    "UnclusteredIndex",
    "AccessCounters",
    "ALEXIndex",
    "LIPPIndex",
    "DILIIndex",
    "NFLIndex",
    "NumericalFlow",
    "BPlusTree",
    "FencePointerIndex",
    "PLRIndex",
    "FITingTreeIndex",
    "PGMIndex",
    "RadixSplineIndex",
    "PLEXIndex",
    "CompactHistTree",
    "RMIIndex",
    "RmiTuningCache",
    "IndexFactory",
    "IndexKind",
    "ALL_KINDS",
    "LEARNED_KINDS",
    "deserialize_index",
    "kind_from_name",
]
