"""RadixSpline: spline knots indexed by a radix table (Figure 2 D).

A single pass of GreedySplineCorridor selects a subset of the keys as
spline knots; linear interpolation between consecutive knots predicts
any member key's position within ``±epsilon``.  A radix table over the
top ``radix_bits`` bits of the (min-shifted) key narrows the knot
binary search to one prefix bucket.

The paper tunes ``RadixBits = 1`` for LSM-trees — with per-SSTable
indexes the key count per table is small enough that a large radix
table is pure memory overhead — so 1 is the default here.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Sequence, Tuple

from repro.errors import IndexBuildError
from repro.indexes import codec
from repro.indexes.base import ClusteredIndex, SearchBound
from repro.indexes.segmentation import greedy_spline_points
from repro.storage.cost_model import CostModel

RADIX_SPLINE_TAG = 5


def interpolate(x0: int, y0: int, x1: int, y1: int, key: int) -> float:
    """Linear interpolation between two spline knots."""
    if x1 == x0:
        return float(y0)
    t = float(key - x0) / float(x1 - x0)
    return y0 + t * (y1 - y0)


class RadixSplineIndex(ClusteredIndex):
    """GreedySpline knots + radix table over key prefixes."""

    kind = "RS"

    def __init__(self, epsilon: int, radix_bits: int = 1) -> None:
        super().__init__()
        if epsilon < 1:
            raise IndexBuildError(f"RS epsilon must be >= 1, got {epsilon}")
        if not 1 <= radix_bits <= 24:
            raise IndexBuildError(
                f"RS radix_bits must be in [1, 24], got {radix_bits}")
        self.epsilon = epsilon
        self.radix_bits = radix_bits
        self._spline_keys: List[int] = []
        self._spline_pos: List[int] = []
        self._table: List[int] = []
        self._key_min = 0
        self._shift = 0

    # -- construction ------------------------------------------------------

    def _fit(self, keys: Sequence[int]) -> None:
        points, visits = greedy_spline_points(keys, self.epsilon)
        self._record_visits(visits)
        self._spline_keys = [key for key, _ in points]
        self._spline_pos = [pos for _, pos in points]
        self._key_min = keys[0]
        span = keys[-1] - keys[0]
        self._shift = max(0, span.bit_length() - self.radix_bits)
        self._table = self._build_table()

    def _build_table(self) -> List[int]:
        buckets = 1 << self.radix_bits
        table = [0] * (buckets + 1)
        spline_idx = 0
        count = len(self._spline_keys)
        for prefix in range(buckets + 1):
            while (spline_idx < count
                   and self._prefix(self._spline_keys[spline_idx]) < prefix):
                spline_idx += 1
            table[prefix] = spline_idx
        table[buckets] = count
        return table

    def _prefix(self, key: int) -> int:
        shifted = (key - self._key_min) >> self._shift
        limit = (1 << self.radix_bits) - 1
        if shifted < 0:
            return 0
        return min(shifted, limit)

    # -- lookup ------------------------------------------------------------

    def _predict(self, key: int) -> SearchBound:
        count = len(self._spline_keys)
        if count == 1:
            return SearchBound(0, 1)
        if key <= self._spline_keys[0]:
            insertion = 1
        else:
            prefix = self._prefix(key)
            lo = self._table[prefix]
            hi = self._table[prefix + 1]
            insertion = bisect_right(self._spline_keys, key, lo, hi)
            if insertion == 0:
                insertion = 1
            elif insertion >= count:
                insertion = count - 1
        left = insertion - 1
        predicted = interpolate(
            self._spline_keys[left], self._spline_pos[left],
            self._spline_keys[insertion], self._spline_pos[insertion], key)
        center = int(predicted)
        return SearchBound(center - self.epsilon, center + self.epsilon + 2)

    # -- introspection -----------------------------------------------------

    def configured_boundary(self) -> int:
        return 2 * self.epsilon

    def spline_point_count(self) -> int:
        """Number of spline knots."""
        return len(self._spline_keys)

    def expected_lookup_cost_us(self, cost: CostModel) -> float:
        buckets = 1 << self.radix_bits
        avg_bucket = max(2, len(self._spline_keys) // buckets)
        return (cost.index_compare_us
                + cost.binary_search_us(avg_bucket)
                + cost.model_eval_us)

    # -- serialisation -------------------------------------------------------

    def describe(self) -> dict:
        """Base summary plus spline and radix-table sizes."""
        info = super().describe()
        info["spline_points"] = len(self._spline_keys)
        info["radix_bits"] = self.radix_bits
        info["table_slots"] = len(self._table)
        return info

    def serialize(self) -> bytes:
        writer = codec.Writer()
        writer.put_u8(RADIX_SPLINE_TAG)
        writer.put_u32(self.epsilon)
        writer.put_u8(self.radix_bits)
        writer.put_u64(self._key_min)
        writer.put_u8(self._shift)
        writer.put_u64(self._n)
        writer.put_u32_array(self._table)
        writer.put_u64_array(self._spline_keys)
        writer.put_u32_array(self._spline_pos)
        return writer.getvalue()

    @classmethod
    def deserialize(cls, reader: codec.Reader) -> "RadixSplineIndex":
        """Rebuild from a :class:`codec.Reader` positioned after the tag."""
        epsilon = reader.get_u32()
        radix_bits = reader.get_u8()
        index = cls(epsilon, radix_bits)
        index._key_min = reader.get_u64()
        index._shift = reader.get_u8()
        index._n = reader.get_u64()
        index._table = reader.get_u32_array()
        index._spline_keys = reader.get_u64_array()
        index._spline_pos = reader.get_u32_array()
        index._built = True
        return index


def spline_segment_for(spline_keys: List[int], key: int,
                       lo: int = 0, hi: int | None = None) -> Tuple[int, int]:
    """Return the knot pair (left, right) bracketing ``key``.

    Shared by PLEX; ``lo``/``hi`` restrict the binary search when a
    higher-level structure has already narrowed the range.
    """
    count = len(spline_keys)
    if hi is None:
        hi = count
    insertion = bisect_right(spline_keys, key, lo, hi)
    if insertion == 0:
        insertion = 1
    elif insertion >= count:
        insertion = count - 1
    return insertion - 1, insertion


def first_spline_at_or_after(spline_keys: List[int], key: int) -> int:
    """Index of the first knot with key >= ``key`` (clamped to len-1)."""
    idx = bisect_left(spline_keys, key)
    return min(idx, len(spline_keys) - 1)
