"""A compact NFL: normalizing-flow key transformation + after-flow index.

NFL (Section 3.2 of the paper) attacks hard key distributions in two
stages: a *Numerical Normalizing Flow* first transforms the keys into a
near-uniform distribution, then a simple *After-Flow Learned Index*
(AFLI) is built over the transformed keys, where linear models are now
accurate because the transformed CDF is nearly a straight line.

The flow here is a monotone piecewise-linear CDF equalizer — the
numerical (non-neural) flow the original paper uses in spirit: split
the key range into quantile bins from a training sample and map each
bin linearly onto an equal-width slice of the unit interval.  The AFLI
is a bucketed structure over the transformed space: uniform buckets
hold small sorted runs, found with one multiply and finished with a
short local search.

Like the other Section 3.2 structures this is data-unclustered (pairs
live in bucket payloads), so it joins ALEX/LIPP/DILI in the
compatibility study rather than plugging into SSTables.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.errors import IndexBuildError
from repro.indexes.unclustered import UnclusteredIndex

#: Quantile bins in the flow (transformation resolution).
_FLOW_BINS = 256
#: Target pairs per AFLI bucket.
_BUCKET_TARGET = 16


class NumericalFlow:
    """A monotone piecewise-linear map from keys to [0, 1).

    Built from key quantiles: bin edges are the sample's q-quantiles,
    so each bin holds the same probability mass and maps onto an
    equal-width slice of the unit interval — the transformed
    distribution of the training keys is near-uniform by construction.
    """

    def __init__(self, sample: Sequence[int], bins: int = _FLOW_BINS) -> None:
        if not sample:
            raise IndexBuildError("flow needs a non-empty key sample")
        if bins < 1:
            raise IndexBuildError(f"flow bins must be >= 1, got {bins}")
        n = len(sample)
        edges: List[int] = []
        for i in range(bins + 1):
            edges.append(sample[min(n - 1, (i * (n - 1)) // bins)])
        # Deduplicate plateau edges while keeping monotonicity.
        unique: List[int] = [edges[0]]
        for edge in edges[1:]:
            if edge > unique[-1]:
                unique.append(edge)
        if len(unique) == 1:
            unique.append(unique[0] + 1)
        self.edges = unique

    def transform(self, key: int) -> float:
        """Map ``key`` monotonically into [0, 1)."""
        edges = self.edges
        nbins = len(edges) - 1
        if key <= edges[0]:
            return 0.0
        if key >= edges[-1]:
            return 1.0 - 1e-12
        idx = bisect_right(edges, key) - 1
        lo, hi = edges[idx], edges[idx + 1]
        fraction = (key - lo) / (hi - lo)
        return (idx + fraction) / nbins

    def uniformity(self, keys: Sequence[int]) -> float:
        """RMS deviation of transformed keys from perfect uniformity.

        Near 0 means the flow succeeded; used by tests and the study.
        """
        n = len(keys)
        if n < 2:
            return 0.0
        acc = 0.0
        for i, key in enumerate(keys):
            acc += (self.transform(key) - i / (n - 1)) ** 2
        return (acc / n) ** 0.5


class _Bucket:
    """One AFLI bucket: a small sorted run of pairs."""

    __slots__ = ("keys", "values")

    def __init__(self) -> None:
        self.keys: List[int] = []
        self.values: List[bytes] = []


class NFLIndex(UnclusteredIndex):
    """Normalizing flow + bucketed after-flow index (unclustered)."""

    def __init__(self, bucket_target: int = _BUCKET_TARGET,
                 flow_bins: int = _FLOW_BINS) -> None:
        super().__init__()
        if bucket_target < 1:
            raise IndexBuildError(
                f"bucket_target must be >= 1, got {bucket_target}")
        self.bucket_target = bucket_target
        self.flow_bins = flow_bins
        self._flow: Optional[NumericalFlow] = None
        self._buckets: List[_Bucket] = []
        self._size = 0

    # -- construction ------------------------------------------------------

    def bulk_load(self, pairs: Sequence[Tuple[int, bytes]]) -> None:
        if not pairs:
            raise IndexBuildError("NFL bulk_load needs at least one pair")
        keys = [key for key, _ in pairs]
        self._flow = NumericalFlow(keys, bins=self.flow_bins)
        n_buckets = max(1, len(pairs) // self.bucket_target)
        self._buckets = [_Bucket() for _ in range(n_buckets)]
        self._size = 0
        for key, value in pairs:
            self._place(key, value)

    def _bucket_for(self, key: int) -> _Bucket:
        assert self._flow is not None
        position = self._flow.transform(key)
        idx = min(len(self._buckets) - 1,
                  int(position * len(self._buckets)))
        return self._buckets[idx]

    def _place(self, key: int, value: bytes) -> bool:
        bucket = self._bucket_for(key)
        idx = bisect_right(bucket.keys, key)
        if idx > 0 and bucket.keys[idx - 1] == key:
            bucket.values[idx - 1] = value
            return False
        bucket.keys.insert(idx, key)
        bucket.values.insert(idx, value)
        self._size += 1
        return True

    # -- operations -----------------------------------------------------------

    def get(self, key: int) -> Optional[bytes]:
        self.counters.operations += 1
        if self._flow is None:
            raise IndexBuildError("NFL used before bulk_load")
        self.counters.node_hops += 1  # bucket dereference
        bucket = self._bucket_for(key)
        idx = bisect_right(bucket.keys, key) - 1
        self.counters.slot_probes += max(1, len(bucket.keys).bit_length())
        if idx >= 0 and bucket.keys[idx] == key:
            return bucket.values[idx]
        return None

    def insert(self, key: int, value: bytes) -> None:
        self.counters.operations += 1
        if self._flow is None:
            raise IndexBuildError("NFL used before bulk_load")
        self.counters.node_hops += 1
        self.counters.slot_probes += 1
        self._place(key, value)

    def range_scan(self, start_key: int,
                   count: int) -> List[Tuple[int, bytes]]:
        self.counters.operations += 1
        if self._flow is None:
            raise IndexBuildError("NFL used before bulk_load")
        position = self._flow.transform(start_key)
        idx = min(len(self._buckets) - 1,
                  int(position * len(self._buckets)))
        out: List[Tuple[int, bytes]] = []
        while idx < len(self._buckets) and len(out) < count:
            bucket = self._buckets[idx]
            self.counters.node_hops += 1
            self.counters.scatter_jumps += 1
            for key, value in zip(bucket.keys, bucket.values):
                if key >= start_key and len(out) < count:
                    out.append((key, value))
            idx += 1
        return out

    # -- accounting -----------------------------------------------------------

    def memory_bytes(self) -> int:
        flow_bytes = 8 * len(self._flow.edges) if self._flow else 0
        bucket_bytes = sum(16 * len(bucket.keys) + 16
                           for bucket in self._buckets)
        return flow_bytes + bucket_bytes

    def __len__(self) -> int:
        return self._size

    def flow_uniformity(self, keys: Sequence[int]) -> float:
        """Post-transform uniformity of ``keys`` (0 = perfectly uniform)."""
        if self._flow is None:
            raise IndexBuildError("NFL used before bulk_load")
        return self._flow.uniformity(keys)

    def max_bucket_size(self) -> int:
        """Largest bucket occupancy (flow quality indicator)."""
        return max((len(bucket.keys) for bucket in self._buckets), default=0)
