"""PLEX: spline knots indexed by a self-tuning Compact Hist-Tree.

PLEX (Figure 2 E) keeps RadixSpline's spline layer but replaces the
flat radix table with a hierarchical radix partitioning — the Compact
Hist-Tree (CHT) — whose fanout it *self-tunes* to the data
distribution.  Tuning evaluates several candidate fanouts against the
actual key distribution, which costs additional passes over the keys;
this is exactly the overhead the paper measures in Figure 9, where
PLEX spends 10-15% of compaction time training versus <5% for the
single-pass indexes.

The CHT here is a faithful small-scale rendition: every node splits
its key range into ``2**bits`` equal sub-ranges; a bin whose spline
range is small enough becomes a leaf, otherwise it points to a child
node.  Lookups walk bit-slices of the key (no comparisons until the
final tiny binary search among at most ``leaf_threshold`` knots).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Optional, Sequence, Tuple

from repro.errors import IndexBuildError
from repro.indexes import codec
from repro.indexes.base import ClusteredIndex, SearchBound
from repro.indexes.radix_spline import interpolate
from repro.indexes.segmentation import greedy_spline_points
from repro.storage.cost_model import CostModel

PLEX_TAG = 6

#: Candidate per-node fanout exponents tried by the self-tuner.
TUNING_CANDIDATE_BITS = (2, 4, 6, 8)

#: A leaf bin may cover at most this many spline knots.
DEFAULT_LEAF_THRESHOLD = 4

_NO_CHILD = 0xFFFFFFFF


class _CHTNode:
    """One hist-tree node over ``[base, base + nbins << shift)``."""

    __slots__ = ("base", "shift", "starts", "children")

    def __init__(self, base: int, shift: int, nbins: int) -> None:
        self.base = base
        self.shift = shift
        self.starts: List[int] = [0] * (nbins + 1)
        self.children: List[Optional["_CHTNode"]] = [None] * nbins


class CompactHistTree:
    """Radix-partitioned tree mapping a key to a small spline-knot range."""

    def __init__(self, bits: int, leaf_threshold: int) -> None:
        if not 1 <= bits <= 16:
            raise IndexBuildError(f"CHT bits must be in [1, 16], got {bits}")
        if leaf_threshold < 1:
            raise IndexBuildError(
                f"CHT leaf_threshold must be >= 1, got {leaf_threshold}")
        self.bits = bits
        self.leaf_threshold = leaf_threshold
        self._root: Optional[_CHTNode] = None
        self._node_count = 0
        self._height = 0
        self._spline_keys: List[int] = []

    def build(self, spline_keys: List[int]) -> None:
        """Construct the tree over sorted spline knot keys."""
        self._spline_keys = spline_keys
        self._node_count = 0
        self._height = 0
        if len(spline_keys) <= 1:
            self._root = None
            return
        span = spline_keys[-1] - spline_keys[0]
        root_shift = max(0, span.bit_length() - self.bits)
        self._root = self._build_node(
            spline_keys[0], root_shift, 0, len(spline_keys), depth=1)

    def _build_node(self, base: int, shift: int, lo: int, hi: int,
                    depth: int) -> _CHTNode:
        nbins = 1 << self.bits
        node = _CHTNode(base, shift, nbins)
        self._node_count += 1
        if depth > self._height:
            self._height = depth
        keys = self._spline_keys
        for i in range(nbins):
            boundary = base + (i << shift)
            node.starts[i] = bisect_left(keys, boundary, lo, hi)
        node.starts[nbins] = hi
        for i in range(nbins):
            count = node.starts[i + 1] - node.starts[i]
            if count > self.leaf_threshold and shift > 0:
                child_shift = max(0, shift - self.bits)
                node.children[i] = self._build_node(
                    base + (i << shift), child_shift,
                    node.starts[i], node.starts[i + 1], depth + 1)
        return node

    def lookup_range(self, key: int) -> Tuple[int, int]:
        """Spline index range ``[lo, hi]`` that brackets ``key``."""
        node = self._root
        if node is None:
            return 0, len(self._spline_keys)
        nbins = 1 << self.bits
        while True:
            offset = key - node.base
            if offset < 0:
                bin_idx = 0
            else:
                bin_idx = min(offset >> node.shift, nbins - 1)
            child = node.children[bin_idx]
            if child is None:
                return node.starts[bin_idx], node.starts[bin_idx + 1]
            node = child

    @property
    def height(self) -> int:
        """Tree height (0 when degenerate)."""
        return self._height

    @property
    def node_count(self) -> int:
        """Total node count (memory accounting)."""
        return self._node_count

    # -- serialisation ---------------------------------------------------

    def serialize_into(self, writer: codec.Writer) -> None:
        """Flatten (BFS order) into ``writer``."""
        order: List[_CHTNode] = []
        if self._root is not None:
            queue = [self._root]
            while queue:
                node = queue.pop(0)
                order.append(node)
                queue.extend(child for child in node.children
                             if child is not None)
        index_of = {id(node): i for i, node in enumerate(order)}
        writer.put_u8(self.bits)
        writer.put_u8(self.leaf_threshold)
        writer.put_u32(len(order))
        writer.put_u32(self._height)
        for node in order:
            writer.put_u64(node.base)
            writer.put_u8(node.shift)
            writer.put_u32_array(node.starts)
            writer.put_u32_array([
                index_of[id(child)] if child is not None else _NO_CHILD
                for child in node.children])

    @classmethod
    def deserialize_from(cls, reader: codec.Reader,
                         spline_keys: List[int]) -> "CompactHistTree":
        """Inverse of :meth:`serialize_into`."""
        bits = reader.get_u8()
        leaf_threshold = reader.get_u8()
        tree = cls(bits, leaf_threshold)
        node_count = reader.get_u32()
        tree._height = reader.get_u32()
        nodes: List[_CHTNode] = []
        refs: List[List[int]] = []
        nbins = 1 << bits
        for _ in range(node_count):
            base = reader.get_u64()
            shift = reader.get_u8()
            node = _CHTNode(base, shift, nbins)
            node.starts = reader.get_u32_array()
            refs.append(reader.get_u32_array())
            nodes.append(node)
        for node, node_refs in zip(nodes, refs):
            node.children = [nodes[ref] if ref != _NO_CHILD else None
                             for ref in node_refs]
        tree._root = nodes[0] if nodes else None
        tree._node_count = node_count
        tree._spline_keys = spline_keys
        return tree


class PLEXIndex(ClusteredIndex):
    """Spline + self-tuned Compact Hist-Tree."""

    kind = "PLEX"

    def __init__(self, epsilon: int,
                 leaf_threshold: int = DEFAULT_LEAF_THRESHOLD,
                 candidate_bits: Sequence[int] = TUNING_CANDIDATE_BITS) -> None:
        super().__init__()
        if epsilon < 1:
            raise IndexBuildError(f"PLEX epsilon must be >= 1, got {epsilon}")
        self.epsilon = epsilon
        self.leaf_threshold = leaf_threshold
        self.candidate_bits = tuple(candidate_bits)
        self._spline_keys: List[int] = []
        self._spline_pos: List[int] = []
        self._tree: Optional[CompactHistTree] = None

    # -- construction ------------------------------------------------------

    def _fit(self, keys: Sequence[int]) -> None:
        points, visits = greedy_spline_points(keys, self.epsilon)
        self._record_visits(visits)
        self._spline_keys = [key for key, _ in points]
        self._spline_pos = [pos for _, pos in points]
        self._tree = self._self_tune(keys)

    def _self_tune(self, keys: Sequence[int]) -> CompactHistTree:
        """Pick the CHT fanout that minimises expected lookup cost.

        Each candidate is evaluated against the real key distribution
        (how deep the average *key* — not knot — lands in the tree),
        which costs one distribution pass per candidate; those passes
        are the training overhead Figure 9 attributes to PLEX.
        """
        spline_bytes = 12 * len(self._spline_keys)
        memory_cap = max(4096, spline_bytes)
        best: Optional[Tuple[float, int, CompactHistTree]] = None
        fallback: Optional[Tuple[int, CompactHistTree]] = None
        for bits in self.candidate_bits:
            tree = CompactHistTree(bits, self.leaf_threshold)
            tree.build(self._spline_keys)
            self._record_visits(len(keys))  # distribution evaluation pass
            avg_depth = self._average_key_depth(tree, keys)
            cost = avg_depth * 0.01 + 0.05  # relative score, see CostModel
            memory = self._tree_bytes(tree)
            if fallback is None or memory < fallback[0]:
                fallback = (memory, tree)
            if memory <= memory_cap and (best is None or cost < best[0]):
                best = (cost, memory, tree)
        if best is not None:
            return best[2]
        assert fallback is not None
        return fallback[1]

    def _average_key_depth(self, tree: CompactHistTree,
                           keys: Sequence[int]) -> float:
        """Mean CHT depth reached by the keys (weighted by leaf ranges)."""
        if tree._root is None:
            return 0.0
        total = 0.0
        count = len(keys)
        stack: List[Tuple[_CHTNode, int]] = [(tree._root, 1)]
        nbins = 1 << tree.bits
        while stack:
            node, depth = stack.pop()
            for i in range(nbins):
                child = node.children[i]
                if child is not None:
                    stack.append((child, depth + 1))
                    continue
                lo_key = node.base + (i << node.shift)
                hi_key = node.base + ((i + 1) << node.shift)
                lo = bisect_left(keys, lo_key)
                hi = bisect_left(keys, hi_key)
                total += depth * (hi - lo)
        return total / count if count else 0.0

    @staticmethod
    def _tree_bytes(tree: CompactHistTree) -> int:
        writer = codec.Writer()
        tree.serialize_into(writer)
        return len(writer)

    # -- lookup ------------------------------------------------------------

    def _predict(self, key: int) -> SearchBound:
        count = len(self._spline_keys)
        if count == 1:
            return SearchBound(0, 1)
        lo, hi = self._tree.lookup_range(key) if self._tree else (0, count)
        insertion = bisect_right(self._spline_keys, key, lo, min(hi, count))
        if insertion == 0:
            insertion = 1
        elif insertion >= count:
            insertion = count - 1
        left = insertion - 1
        predicted = interpolate(
            self._spline_keys[left], self._spline_pos[left],
            self._spline_keys[insertion], self._spline_pos[insertion], key)
        center = int(predicted)
        return SearchBound(center - self.epsilon, center + self.epsilon + 2)

    # -- introspection -----------------------------------------------------

    def configured_boundary(self) -> int:
        return 2 * self.epsilon

    def spline_point_count(self) -> int:
        """Number of spline knots."""
        return len(self._spline_keys)

    def tree_height(self) -> int:
        """Height of the tuned CHT."""
        return self._tree.height if self._tree else 0

    def chosen_bits(self) -> int:
        """Fanout exponent selected by self-tuning."""
        return self._tree.bits if self._tree else 0

    def expected_lookup_cost_us(self, cost: CostModel) -> float:
        height = self._tree.height if self._tree else 1
        return (height * cost.index_compare_us
                + cost.binary_search_us(max(2, self.leaf_threshold))
                + cost.model_eval_us)

    # -- serialisation -------------------------------------------------------

    def describe(self) -> dict:
        """Base summary plus spline size and the tuned CHT shape."""
        info = super().describe()
        info["spline_points"] = len(self._spline_keys)
        info["cht_bits"] = self.chosen_bits()
        info["cht_height"] = self.tree_height()
        info["cht_nodes"] = self._tree.node_count if self._tree else 0
        return info

    def serialize(self) -> bytes:
        writer = codec.Writer()
        writer.put_u8(PLEX_TAG)
        writer.put_u32(self.epsilon)
        writer.put_u64(self._n)
        writer.put_u64_array(self._spline_keys)
        writer.put_u32_array(self._spline_pos)
        has_tree = self._tree is not None
        writer.put_u8(1 if has_tree else 0)
        if has_tree:
            self._tree.serialize_into(writer)
        return writer.getvalue()

    @classmethod
    def deserialize(cls, reader: codec.Reader) -> "PLEXIndex":
        """Rebuild from a :class:`codec.Reader` positioned after the tag."""
        epsilon = reader.get_u32()
        n = reader.get_u64()
        index = cls(epsilon)
        index._spline_keys = reader.get_u64_array()
        index._spline_pos = reader.get_u32_array()
        if reader.get_u8() == 1:
            index._tree = CompactHistTree.deserialize_from(
                reader, index._spline_keys)
        index._n = n
        index._built = True
        return index
