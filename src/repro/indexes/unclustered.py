"""Shared interface for data-unclustered learned indexes (ALEX, LIPP).

Section 3 of the paper splits learned indexes into *data-clustered*
(key-value pairs stored contiguously — pluggable into SSTables) and
*data-unclustered* (pairs scattered across model-addressed nodes).
The paper argues the latter cannot replace fence pointers without
redesigning the LSM storage layout, and supports the claim
qualitatively: pointer-chasing lookups and scattered range scans.

To reproduce that argument quantitatively, ALEX and LIPP implement
this interface, which counts the two costs the clustered layout never
pays: *node hops* (pointer dereferences = cache/disk jumps) and
*scatter jumps* during range scans (a contiguous segment scan performs
zero).  The unclustered-study experiment turns these counters into the
paper's Section 3.3 comparison table.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class AccessCounters:
    """Traversal statistics accumulated across operations."""

    node_hops: int = 0
    slot_probes: int = 0
    scatter_jumps: int = 0
    operations: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.node_hops = 0
        self.slot_probes = 0
        self.scatter_jumps = 0
        self.operations = 0

    def hops_per_op(self) -> float:
        """Mean pointer dereferences per operation."""
        return self.node_hops / self.operations if self.operations else 0.0

    def probes_per_op(self) -> float:
        """Mean slot probes per operation."""
        return self.slot_probes / self.operations if self.operations else 0.0


class UnclusteredIndex(ABC):
    """A dynamic in-memory learned index over (int key -> bytes value)."""

    def __init__(self) -> None:
        self.counters = AccessCounters()

    @abstractmethod
    def bulk_load(self, pairs: Sequence[Tuple[int, bytes]]) -> None:
        """Build from sorted, unique (key, value) pairs."""

    @abstractmethod
    def get(self, key: int) -> Optional[bytes]:
        """Point lookup."""

    @abstractmethod
    def insert(self, key: int, value: bytes) -> None:
        """Insert or overwrite."""

    @abstractmethod
    def range_scan(self, start_key: int,
                   count: int) -> List[Tuple[int, bytes]]:
        """Up to ``count`` pairs with key >= ``start_key``, in order."""

    @abstractmethod
    def memory_bytes(self) -> int:
        """Approximate structure footprint (slots, models, pointers)."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of live keys."""
