"""Index registry: names, factories and deserialisation dispatch.

The benchmark sweeps are expressed over (index type, position boundary,
granularity) triples.  This module converts an index-type name plus a
position boundary into concrete per-table index instances, applying the
paper's parameter mapping:

* FP — the boundary is the data-block entry count;
* PLR / FITing-Tree / PGM / RadixSpline / PLEX — epsilon = boundary/2;
* RMI — the boundary is a *target*: the factory owns a shared
  :class:`~repro.indexes.rmi.RmiTuningCache` so the second-layer size
  search warm-starts across the many tables a database builds.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional, Sequence

from repro.errors import IndexBuildError
from repro.indexes import codec
from repro.indexes.base import ClusteredIndex
from repro.indexes.fence import FENCE_TAG, FencePointerIndex
from repro.indexes.fiting_tree import FITING_TAG, FITingTreeIndex
from repro.indexes.pgm import DEFAULT_EPSILON_RECURSIVE, PGM_TAG, PGMIndex
from repro.indexes.plex import PLEX_TAG, PLEXIndex
from repro.indexes.plr import PLR_TAG, PLRIndex
from repro.indexes.radix_spline import RADIX_SPLINE_TAG, RadixSplineIndex
from repro.indexes.rmi import RMI_TAG, RMIIndex, RmiTuningCache


class IndexKind(str, enum.Enum):
    """The seven index types of the paper's evaluation (Figure 6)."""

    FP = "FP"
    FT = "FT"
    PLR = "PLR"
    PLEX = "PLEX"
    RS = "RS"
    RMI = "RMI"
    PGM = "PGM"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Every kind evaluated by the paper, in its plotting order.
ALL_KINDS = (IndexKind.FP, IndexKind.FT, IndexKind.PLR, IndexKind.PLEX,
             IndexKind.RS, IndexKind.RMI, IndexKind.PGM)

#: The learned kinds (everything but the fence-pointer baseline).
LEARNED_KINDS = tuple(kind for kind in ALL_KINDS if kind is not IndexKind.FP)


class IndexFactory:
    """Builds per-table indexes for one (kind, boundary) configuration.

    A factory is shared by every table of a database so cross-build
    state (RMI's tuning cache) persists across flushes and compactions.
    """

    def __init__(self, kind: IndexKind | str, boundary: int, *,
                 epsilon_recursive: int = DEFAULT_EPSILON_RECURSIVE,
                 radix_bits: int = 1,
                 btree_order: int = 16,
                 plex_leaf_threshold: int = 4) -> None:
        self.kind = IndexKind(kind)
        if boundary < 2:
            raise IndexBuildError(
                f"position boundary must be >= 2, got {boundary}")
        self.boundary = boundary
        self.epsilon = max(1, boundary // 2)
        self.epsilon_recursive = epsilon_recursive
        self.radix_bits = radix_bits
        self.btree_order = btree_order
        self.plex_leaf_threshold = plex_leaf_threshold
        self._rmi_cache = RmiTuningCache()

    def create(self) -> ClusteredIndex:
        """A fresh, unbuilt index instance for one table."""
        kind = self.kind
        if kind is IndexKind.FP:
            return FencePointerIndex(self.boundary)
        if kind is IndexKind.PLR:
            return PLRIndex(self.epsilon)
        if kind is IndexKind.FT:
            return FITingTreeIndex(self.epsilon, order=self.btree_order)
        if kind is IndexKind.PGM:
            return PGMIndex(self.epsilon,
                            epsilon_recursive=self.epsilon_recursive)
        if kind is IndexKind.RS:
            return RadixSplineIndex(self.epsilon, radix_bits=self.radix_bits)
        if kind is IndexKind.PLEX:
            return PLEXIndex(self.epsilon,
                             leaf_threshold=self.plex_leaf_threshold)
        if kind is IndexKind.RMI:
            return RMIIndex(self.boundary, cache=self._rmi_cache)
        raise IndexBuildError(f"unknown index kind: {kind}")  # pragma: no cover

    def build(self, keys: Sequence[int]) -> ClusteredIndex:
        """Create and train an index over ``keys``."""
        index = self.create()
        index.build(keys)
        return index

    def describe(self) -> str:
        """Human-readable configuration summary."""
        return f"{self.kind.value}(boundary={self.boundary})"


_DESERIALIZERS: Dict[int, Callable[[codec.Reader], ClusteredIndex]] = {
    FENCE_TAG: FencePointerIndex.deserialize,
    PLR_TAG: PLRIndex.deserialize,
    FITING_TAG: FITingTreeIndex.deserialize,
    PGM_TAG: PGMIndex.deserialize,
    RADIX_SPLINE_TAG: RadixSplineIndex.deserialize,
    PLEX_TAG: PLEXIndex.deserialize,
    RMI_TAG: RMIIndex.deserialize,
}


def deserialize_index(data: bytes) -> ClusteredIndex:
    """Reconstruct any serialised index from its tagged byte string."""
    reader = codec.Reader(data)
    tag = reader.get_u8()
    loader = _DESERIALIZERS.get(tag)
    if loader is None:
        raise IndexBuildError(f"unknown index type tag: {tag}")
    return loader(reader)


def kind_from_name(name: str) -> IndexKind:
    """Parse an index-kind name case-insensitively."""
    try:
        return IndexKind(name.upper())
    except ValueError:
        valid = ", ".join(kind.value for kind in ALL_KINDS)
        raise IndexBuildError(
            f"unknown index kind {name!r}; expected one of: {valid}") from None
