"""Piece-wise Linear Regression (PLR) — Bourbon's learned index.

The greedy corridor algorithm (Figure 2 A of the paper) splits the
sorted key array into segments whose linear models are guaranteed to
predict every member key's position within ``±epsilon``.  The inner
index is simply the sorted array of segment first-keys, searched with
binary search — the lightest inner structure of all the learned
indexes, which is why the paper highlights PLR's memory efficiency
despite its simplicity.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import IndexBuildError
from repro.indexes import codec
from repro.indexes.base import (
    ClusteredIndex,
    SearchBound,
    Segment,
    floor_index,
    segments_to_bound,
)
from repro.indexes.segmentation import greedy_corridor_segments
from repro.storage.cost_model import CostModel

PLR_TAG = 2


def serialize_segments(writer: codec.Writer, segments: List[Segment]) -> None:
    """Write a segment list in the shared columnar layout.

    Stores first keys (u64), slopes and intercepts (f64) and start
    positions (u32): 28 bytes per segment, mirroring the C++ structs
    of the original implementations.
    """
    writer.put_u64_array([segment.first_key for segment in segments])
    writer.put_f64_array([segment.slope for segment in segments])
    writer.put_f64_array([segment.intercept for segment in segments])
    writer.put_u32_array([segment.start for segment in segments])


def deserialize_segments(reader: codec.Reader, n: int) -> List[Segment]:
    """Inverse of :func:`serialize_segments`; lengths are re-derived."""
    firsts = reader.get_u64_array()
    slopes = reader.get_f64_array()
    intercepts = reader.get_f64_array()
    starts = reader.get_u32_array()
    segments: List[Segment] = []
    for i, (first, slope, intercept, start) in enumerate(
            zip(firsts, slopes, intercepts, starts)):
        end = starts[i + 1] if i + 1 < len(starts) else n
        segments.append(Segment(first_key=first, slope=slope,
                                intercept=intercept, start=start,
                                length=end - start))
    return segments


class PLRIndex(ClusteredIndex):
    """Greedy piece-wise linear regression with a flat segment array."""

    kind = "PLR"

    def __init__(self, epsilon: int) -> None:
        super().__init__()
        if epsilon < 1:
            raise IndexBuildError(f"PLR epsilon must be >= 1, got {epsilon}")
        self.epsilon = epsilon
        self._segments: List[Segment] = []
        self._firsts: List[int] = []

    def _fit(self, keys: Sequence[int]) -> None:
        self._segments, visits = greedy_corridor_segments(keys, self.epsilon)
        self._firsts = [segment.first_key for segment in self._segments]
        self._record_visits(visits)

    def _predict(self, key: int) -> SearchBound:
        segment = self._segments[floor_index(self._firsts, key)]
        return segments_to_bound(segment, key, self.epsilon)

    def configured_boundary(self) -> int:
        return 2 * self.epsilon

    def segment_count(self) -> int:
        """Number of linear segments produced by the greedy pass."""
        return len(self._segments)

    def expected_lookup_cost_us(self, cost: CostModel) -> float:
        return (cost.binary_search_us(max(1, len(self._segments)))
                + cost.model_eval_us)

    def describe(self) -> dict:
        """Base summary plus the segment count."""
        info = super().describe()
        info["segments"] = len(self._segments)
        return info

    def serialize(self) -> bytes:
        writer = codec.Writer()
        writer.put_u8(PLR_TAG)
        writer.put_u32(self.epsilon)
        writer.put_u64(self._n)
        serialize_segments(writer, self._segments)
        return writer.getvalue()

    @classmethod
    def deserialize(cls, reader: codec.Reader) -> "PLRIndex":
        """Rebuild from a :class:`codec.Reader` positioned after the tag."""
        epsilon = reader.get_u32()
        n = reader.get_u64()
        index = cls(epsilon)
        index._segments = deserialize_segments(reader, n)
        index._firsts = [segment.first_key for segment in index._segments]
        index._n = n
        index._built = True
        return index
