"""Compact binary serialisation helpers for learned indexes.

Every index in this package serialises to a compact, struct-packed byte
string — the same representation the paper's C++ structures occupy in
memory.  The serialised length therefore doubles as the index's memory
footprint (`size_bytes`), which keeps the memory axis of every
experiment honest: Python object overhead never leaks into reported
numbers.

The format is little-endian throughout.  Each index type prepends a
one-byte type tag (see :mod:`repro.indexes.registry`) so a table file
can be deserialised without out-of-band information.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

from repro.errors import CorruptionError

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_F64 = struct.Struct("<d")


class Writer:
    """An append-only binary buffer with typed put methods."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def put_u8(self, value: int) -> None:
        """Append one unsigned byte."""
        self._parts.append(_U8.pack(value))

    def put_u32(self, value: int) -> None:
        """Append one little-endian uint32."""
        self._parts.append(_U32.pack(value))

    def put_u64(self, value: int) -> None:
        """Append one little-endian uint64."""
        self._parts.append(_U64.pack(value))

    def put_f64(self, value: float) -> None:
        """Append one IEEE-754 double."""
        self._parts.append(_F64.pack(value))

    def put_u64_array(self, values: Sequence[int]) -> None:
        """Append a length-prefixed array of uint64."""
        self.put_u32(len(values))
        self._parts.append(struct.pack(f"<{len(values)}Q", *values))

    def put_u32_array(self, values: Sequence[int]) -> None:
        """Append a length-prefixed array of uint32."""
        self.put_u32(len(values))
        self._parts.append(struct.pack(f"<{len(values)}I", *values))

    def put_f64_array(self, values: Sequence[float]) -> None:
        """Append a length-prefixed array of doubles."""
        self.put_u32(len(values))
        self._parts.append(struct.pack(f"<{len(values)}d", *values))

    def put_bytes(self, data: bytes) -> None:
        """Append a length-prefixed opaque byte string."""
        self.put_u32(len(data))
        self._parts.append(data)

    def getvalue(self) -> bytes:
        """Return the accumulated buffer."""
        return b"".join(self._parts)

    def __len__(self) -> int:
        return sum(len(part) for part in self._parts)


class Reader:
    """A sequential reader over a buffer produced by :class:`Writer`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, nbytes: int) -> bytes:
        end = self._pos + nbytes
        if end > len(self._data):
            raise CorruptionError(
                f"truncated index payload: wanted {nbytes} bytes at "
                f"{self._pos}, have {len(self._data)}")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def get_u8(self) -> int:
        """Read one unsigned byte."""
        return _U8.unpack(self._take(1))[0]

    def get_u32(self) -> int:
        """Read one uint32."""
        return _U32.unpack(self._take(4))[0]

    def get_u64(self) -> int:
        """Read one uint64."""
        return _U64.unpack(self._take(8))[0]

    def get_f64(self) -> float:
        """Read one double."""
        return _F64.unpack(self._take(8))[0]

    def get_u64_array(self) -> List[int]:
        """Read a length-prefixed uint64 array."""
        count = self.get_u32()
        return list(struct.unpack(f"<{count}Q", self._take(8 * count)))

    def get_u32_array(self) -> List[int]:
        """Read a length-prefixed uint32 array."""
        count = self.get_u32()
        return list(struct.unpack(f"<{count}I", self._take(4 * count)))

    def get_f64_array(self) -> List[float]:
        """Read a length-prefixed double array."""
        count = self.get_u32()
        return list(struct.unpack(f"<{count}d", self._take(8 * count)))

    def get_bytes(self) -> bytes:
        """Read a length-prefixed opaque byte string."""
        count = self.get_u32()
        return self._take(count)

    def exhausted(self) -> bool:
        """True when every byte has been consumed."""
        return self._pos == len(self._data)

    def remaining(self) -> int:
        """Bytes not yet consumed."""
        return len(self._data) - self._pos


def pack_pairs(pairs: Iterable[Tuple[int, float, float]]) -> bytes:
    """Pack ``(key, slope, intercept)`` triples — the common segment shape."""
    writer = Writer()
    items = list(pairs)
    writer.put_u32(len(items))
    for key, slope, intercept in items:
        writer.put_u64(key)
        writer.put_f64(slope)
        writer.put_f64(intercept)
    return writer.getvalue()


def unpack_pairs(reader: Reader) -> List[Tuple[int, float, float]]:
    """Inverse of :func:`pack_pairs`."""
    count = reader.get_u32()
    return [(reader.get_u64(), reader.get_f64(), reader.get_f64())
            for _ in range(count)]
