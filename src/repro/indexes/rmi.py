"""Two-layer Recursive Model Index (Figure 2 F).

RMI approximates the key CDF with a hierarchy of models: a root model
routes each key to one of ``n_leaf`` second-layer linear models, each
trained on the keys routed to it.  Two properties from the paper are
central here:

* *errors are recorded, not configured* — after fitting, a second pass
  records every leaf's maximum prediction error, and lookups use the
  per-leaf bound.  RMI can therefore reach error bounds as small as 1
  by enlarging the second layer;
* *the position boundary is tuned via the second-layer size* — the
  constructor takes a target boundary and searches for the smallest
  second layer whose 99th-percentile key error fits it, warm-started
  from a cache so steady-state compaction rebuilds converge in one
  round (two passes over the keys), keeping Figure 9's training
  overhead modest.

Unlike the segment-based indexes, RMI stores *no keys at all*: its
memory is purely model parameters, which is why Figure 8 shows its
footprint shrinking with table size even at tiny boundaries — the
paper attributes this to the inner index (first stage) dominating.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import IndexBuildError
from repro.indexes import codec
from repro.indexes.base import ClusteredIndex, SearchBound
from repro.storage.cost_model import CostModel

RMI_TAG = 7

#: Fraction of keys whose error must fit the target boundary.
ACCEPT_QUANTILE = 0.99

#: Maximum tuning rounds when the cache is cold.
MAX_TUNING_ROUNDS = 8


class RmiTuningCache:
    """Remembers accepted second-layer sizes across rebuilds.

    Compactions rebuild indexes over tables with near-identical size
    and distribution, so the leaf density accepted last time is almost
    always right the next time.  Keys are (log2-bucketed n, target
    error) pairs; values are leaves-per-key densities.
    """

    def __init__(self) -> None:
        self._density: Dict[Tuple[int, int], float] = {}

    @staticmethod
    def _bucket(n: int, target_error: int) -> Tuple[int, int]:
        return (int(math.log2(max(2, n))), target_error)

    def suggest(self, n: int, target_error: int) -> Optional[int]:
        """A warm-start leaf count, or None when cold."""
        density = self._density.get(self._bucket(n, target_error))
        if density is None:
            return None
        return max(4, min(n, int(density * n)))

    def update(self, n: int, target_error: int, n_leaf: int) -> None:
        """Record the accepted leaf count for future builds."""
        self._density[self._bucket(n, target_error)] = n_leaf / max(1, n)


class RMIIndex(ClusteredIndex):
    """Two-layer RMI with recorded per-leaf error bounds."""

    kind = "RMI"

    def __init__(self, boundary_target: int,
                 cache: Optional[RmiTuningCache] = None,
                 max_rounds: int = MAX_TUNING_ROUNDS,
                 accept_quantile: float = ACCEPT_QUANTILE) -> None:
        super().__init__()
        if boundary_target < 2:
            raise IndexBuildError(
                f"RMI boundary target must be >= 2, got {boundary_target}")
        self.boundary_target = boundary_target
        self.target_error = max(1, boundary_target // 2)
        self.cache = cache
        self.max_rounds = max_rounds
        self.accept_quantile = accept_quantile
        # Model state; keys are mapped to t = (key - key_min) / span.
        self._key_min = 0
        self._span = 1.0
        self._root_slope = 0.0
        self._root_intercept = 0.0
        self._n_leaf = 0
        self._slopes = np.zeros(0)
        self._intercepts = np.zeros(0)
        self._errors = np.zeros(0, dtype=np.int64)
        self._mean_error = 0.0
        self._max_error = 0

    # -- construction ------------------------------------------------------

    def _fit(self, keys: Sequence[int]) -> None:
        n = len(keys)
        xs = np.asarray(keys, dtype=np.float64)
        pos = np.arange(n, dtype=np.float64)
        self._key_min = int(keys[0])
        span = float(keys[-1] - keys[0])
        self._span = span if span > 0 else 1.0
        t = (xs - xs[0]) / self._span

        # Root: least squares t -> position, slope clamped monotone.
        root = self._fit_root(t, pos, n)
        self._root_slope, self._root_intercept = root

        suggestion = (self.cache.suggest(n, self.target_error)
                      if self.cache is not None else None)
        n_leaf = suggestion if suggestion is not None else self._cold_guess(n)
        warm = suggestion is not None

        best: Optional[Tuple[int, np.ndarray, np.ndarray, np.ndarray,
                             np.ndarray]] = None
        rounds = 0
        while rounds < self.max_rounds:
            rounds += 1
            fitted = self._fit_layer(t, pos, n, n_leaf)
            self._record_visits(2 * n)  # assignment/fit pass + error pass
            slopes, intercepts, errors, key_errors = fitted
            ok_fraction = float(np.mean(key_errors <= self.target_error))
            if ok_fraction >= self.accept_quantile or n_leaf >= n:
                best = (n_leaf, slopes, intercepts, errors, key_errors)
                if warm and rounds == 1:
                    break  # steady state: the cached size passed first try
                if n_leaf <= 8:
                    break
                # Keep halving while the target still holds, converging
                # on the smallest passing second layer.
                n_leaf = max(8, n_leaf // 2)
                continue
            if best is not None:
                break  # previous (larger) layer was the smallest passing one
            n_leaf = min(n, n_leaf * 4)
        if best is None:  # every round failed: keep the last (largest) fit
            best = (n_leaf, *self._fit_layer(t, pos, n, n_leaf))
            self._record_visits(2 * n)
        self._n_leaf, self._slopes, self._intercepts, self._errors, key_errs \
            = best
        self._mean_error = float(np.mean(key_errs))
        self._max_error = int(key_errs.max()) if len(key_errs) else 0
        if self.cache is not None:
            self.cache.update(n, self.target_error, self._n_leaf)

    def _cold_guess(self, n: int) -> int:
        """Initial second-layer size before any tuning information."""
        denom = max(16, self.target_error * self.target_error)
        return int(min(n, max(8, 4 * n // denom)))

    @staticmethod
    def _fit_root(t: np.ndarray, pos: np.ndarray, n: int) -> Tuple[float, float]:
        sum_t = float(t.sum())
        sum_p = float(pos.sum())
        sum_tt = float((t * t).sum())
        sum_tp = float((t * pos).sum())
        denom = n * sum_tt - sum_t * sum_t
        if denom <= 0:
            return 0.0, sum_p / n
        slope = (n * sum_tp - sum_t * sum_p) / denom
        slope = max(slope, 0.0)  # keep routing monotone
        intercept = (sum_p - slope * sum_t) / n
        return slope, intercept

    def _route(self, t: np.ndarray, n: int, n_leaf: int) -> np.ndarray:
        pred = self._root_slope * t + self._root_intercept
        leaf = np.floor(pred * n_leaf / n).astype(np.int64)
        return np.clip(leaf, 0, n_leaf - 1)

    def _fit_layer(self, t: np.ndarray, pos: np.ndarray, n: int,
                   n_leaf: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray,
                                         np.ndarray]:
        """Fit ``n_leaf`` leaf models; returns per-leaf params and errors."""
        leaf_idx = self._route(t, n, n_leaf)
        boundaries = np.searchsorted(leaf_idx, np.arange(n_leaf + 1))
        counts = np.diff(boundaries).astype(np.float64)

        def window_sums(values: np.ndarray) -> np.ndarray:
            cumulative = np.concatenate(([0.0], np.cumsum(values)))
            return cumulative[boundaries[1:]] - cumulative[boundaries[:-1]]

        sum_t = window_sums(t)
        sum_p = window_sums(pos)
        sum_tt = window_sums(t * t)
        sum_tp = window_sums(t * pos)
        denom = counts * sum_tt - sum_t * sum_t
        safe = np.abs(denom) > 1e-30
        slopes = np.where(safe, np.divide(
            counts * sum_tp - sum_t * sum_p, denom,
            out=np.zeros_like(denom), where=safe), 0.0)
        occupied = counts > 0
        intercepts = np.where(occupied, np.divide(
            sum_p - slopes * sum_t, np.maximum(counts, 1.0)), 0.0)
        # Empty leaves: point at the position where their keys would be.
        empty_fill = boundaries[:-1].astype(np.float64)
        intercepts = np.where(occupied, intercepts, empty_fill)

        predictions = slopes[leaf_idx] * t + intercepts[leaf_idx]
        key_errors = np.abs(predictions - pos)
        errors = np.zeros(n_leaf, dtype=np.int64)
        if n:
            reduced = np.maximum.reduceat(
                key_errors, np.minimum(boundaries[:-1], n - 1))
            errors = np.where(occupied, np.ceil(reduced).astype(np.int64), 0)
        return slopes, intercepts, errors, key_errors

    # -- lookup ------------------------------------------------------------

    def _predict(self, key: int) -> SearchBound:
        t = (key - self._key_min) / self._span
        root_pred = self._root_slope * t + self._root_intercept
        leaf = int(root_pred * self._n_leaf / self._n)
        if leaf < 0:
            leaf = 0
        elif leaf >= self._n_leaf:
            leaf = self._n_leaf - 1
        predicted = self._slopes[leaf] * t + self._intercepts[leaf]
        error = int(self._errors[leaf])
        center = int(predicted)
        return SearchBound(center - error, center + error + 2)

    # -- introspection -----------------------------------------------------

    def configured_boundary(self) -> int:
        return self.boundary_target

    def leaf_count(self) -> int:
        """Size of the second layer."""
        return self._n_leaf

    def mean_error(self) -> float:
        """Mean recorded prediction error over the build keys."""
        return self._mean_error

    def max_error(self) -> int:
        """Largest recorded prediction error."""
        return self._max_error

    def expected_lookup_cost_us(self, cost: CostModel) -> float:
        return 2 * cost.model_eval_us

    # -- serialisation -------------------------------------------------------

    def describe(self) -> dict:
        """Base summary plus second-layer size and recorded errors."""
        info = super().describe()
        info["leaves"] = self._n_leaf
        info["mean_error"] = round(self._mean_error, 3)
        info["max_error"] = self._max_error
        return info

    def serialize(self) -> bytes:
        writer = codec.Writer()
        writer.put_u8(RMI_TAG)
        writer.put_u32(self.boundary_target)
        writer.put_u64(self._n)
        writer.put_u64(self._key_min)
        writer.put_f64(self._span)
        writer.put_f64(self._root_slope)
        writer.put_f64(self._root_intercept)
        writer.put_u32(self._n_leaf)
        writer.put_f64_array([float(v) for v in self._slopes])
        writer.put_f64_array([float(v) for v in self._intercepts])
        writer.put_u32_array([int(v) for v in self._errors])
        return writer.getvalue()

    @classmethod
    def deserialize(cls, reader: codec.Reader) -> "RMIIndex":
        """Rebuild from a :class:`codec.Reader` positioned after the tag."""
        boundary = reader.get_u32()
        index = cls(boundary)
        index._n = reader.get_u64()
        index._key_min = reader.get_u64()
        index._span = reader.get_f64()
        index._root_slope = reader.get_f64()
        index._root_intercept = reader.get_f64()
        index._n_leaf = reader.get_u32()
        index._slopes = np.asarray(reader.get_f64_array())
        index._intercepts = np.asarray(reader.get_f64_array())
        index._errors = np.asarray(reader.get_u32_array(), dtype=np.int64)
        index._built = True
        return index
