"""The PGM-index: recursive optimal piecewise-linear models (Figure 2 C).

PGM differs from the greedy family in two ways the paper leans on:

* its segmentation is *optimal* — the streaming convex-hull algorithm
  (:func:`repro.indexes.segmentation.optimal_pla_segments`) produces
  the minimum number of epsilon-bounded segments, so PGM needs fewer
  segments (less memory) than PLR/FITing-Tree at the same boundary;
* instead of binary-searching the segment array, it recursively builds
  PLA models *over the segment first-keys* with an internal error
  bound ``epsilon_recursive``, walking down a constant number of
  levels with tiny windowed searches.

The paper keeps ``EpsilonRecursive = 4`` (it "has little impact" in
LSM systems); that is the default here too.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence

from repro.errors import IndexBuildError
from repro.indexes import codec
from repro.indexes.base import ClusteredIndex, SearchBound, Segment, segments_to_bound
from repro.indexes.plr import deserialize_segments, serialize_segments
from repro.indexes.segmentation import optimal_pla_segments
from repro.storage.cost_model import CostModel

PGM_TAG = 4

#: The paper's default internal error bound.
DEFAULT_EPSILON_RECURSIVE = 4


class PGMIndex(ClusteredIndex):
    """Recursive optimal PLA over a sorted key array."""

    kind = "PGM"

    def __init__(self, epsilon: int,
                 epsilon_recursive: int = DEFAULT_EPSILON_RECURSIVE) -> None:
        super().__init__()
        if epsilon < 1:
            raise IndexBuildError(f"PGM epsilon must be >= 1, got {epsilon}")
        if epsilon_recursive < 1:
            raise IndexBuildError(
                f"PGM epsilon_recursive must be >= 1, got {epsilon_recursive}")
        self.epsilon = epsilon
        self.epsilon_recursive = epsilon_recursive
        #: levels[0] are the leaf segments over the data; levels[-1] has
        #: exactly one segment (the root).
        self._levels: List[List[Segment]] = []
        self._level_firsts: List[List[int]] = []

    # -- construction ------------------------------------------------------

    def _fit(self, keys: Sequence[int]) -> None:
        leaves, visits = optimal_pla_segments(keys, self.epsilon)
        self._record_visits(visits)
        levels = [leaves]
        while len(levels[-1]) > 1:
            seg_keys = [segment.first_key for segment in levels[-1]]
            upper, upper_visits = optimal_pla_segments(
                seg_keys, self.epsilon_recursive)
            self._record_visits(upper_visits)
            if len(upper) >= len(seg_keys):
                # No compression possible (pathological keys): stop and
                # binary-search this level directly.
                break
            levels.append(upper)
        self._levels = levels
        self._level_firsts = [[segment.first_key for segment in level]
                              for level in levels]

    # -- lookup ------------------------------------------------------------

    def _predict(self, key: int) -> SearchBound:
        top = len(self._levels) - 1
        if len(self._levels[top]) == 1:
            seg_idx = 0
        else:
            # Root level left unrooted by the compression guard: plain
            # binary search over its first keys.
            seg_idx = max(0, bisect_right(self._level_firsts[top], key) - 1)
        for level in range(top, 0, -1):
            segment = self._levels[level][seg_idx]
            bound = segments_to_bound(segment, key, self.epsilon_recursive)
            seg_idx = self._windowed_floor(
                self._level_firsts[level - 1], key, bound)
        leaf = self._levels[0][seg_idx]
        return segments_to_bound(leaf, key, self.epsilon)

    @staticmethod
    def _windowed_floor(firsts: List[int], key: int, bound: SearchBound) -> int:
        """Floor search restricted to ``bound``, with safety fix-up.

        The PLA guarantee puts the true floor inside the window for
        monotone models; the fix-up loops cover float corner cases so
        correctness never rests on rounding.
        """
        lo = max(0, min(bound.lo, len(firsts) - 1))
        hi = max(lo + 1, min(bound.hi, len(firsts)))
        idx = bisect_right(firsts, key, lo, hi) - 1
        if idx < lo:
            idx = lo
        while idx > 0 and firsts[idx] > key:
            idx -= 1
        while idx + 1 < len(firsts) and firsts[idx + 1] <= key:
            idx += 1
        return idx

    # -- introspection -----------------------------------------------------

    def configured_boundary(self) -> int:
        return 2 * self.epsilon

    def segment_count(self) -> int:
        """Leaf segment count (the dominant memory term)."""
        return len(self._levels[0]) if self._levels else 0

    def level_count(self) -> int:
        """Number of PLA levels including the leaves."""
        return len(self._levels)

    def expected_lookup_cost_us(self, cost: CostModel) -> float:
        window = 2 * self.epsilon_recursive + 2
        per_level = cost.model_eval_us + cost.binary_search_us(window)
        return max(1, len(self._levels)) * per_level

    # -- serialisation -------------------------------------------------------

    def describe(self) -> dict:
        """Base summary plus per-level segment counts."""
        info = super().describe()
        info["levels"] = [len(level) for level in self._levels]
        info["epsilon_recursive"] = self.epsilon_recursive
        return info

    def serialize(self) -> bytes:
        writer = codec.Writer()
        writer.put_u8(PGM_TAG)
        writer.put_u32(self.epsilon)
        writer.put_u32(self.epsilon_recursive)
        writer.put_u64(self._n)
        writer.put_u8(len(self._levels))
        for level in self._levels:
            serialize_segments(writer, level)
        return writer.getvalue()

    @classmethod
    def deserialize(cls, reader: codec.Reader) -> "PGMIndex":
        """Rebuild from a :class:`codec.Reader` positioned after the tag."""
        epsilon = reader.get_u32()
        epsilon_recursive = reader.get_u32()
        n = reader.get_u64()
        level_count = reader.get_u8()
        index = cls(epsilon, epsilon_recursive)
        levels: List[List[Segment]] = []
        size = n
        for depth in range(level_count):
            level = deserialize_segments(reader, size)
            levels.append(level)
            size = len(level)
        index._levels = levels
        index._level_firsts = [[segment.first_key for segment in level]
                               for level in levels]
        index._n = n
        index._built = True
        return index
