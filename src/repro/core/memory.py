"""Memory budget ledger for the LSM-tree's in-memory components.

The paper's Section 6.1 guideline — "wisely allocate the memory
budget" — needs a way to talk about where memory goes: learned
indexes, bloom filters and the write buffer all compete for one
budget.  :class:`MemoryLedger` tracks component allocations against a
budget and reports utilisation; the tuning advisor uses it to reject
configurations that starve the other components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import BenchmarkError


@dataclass
class MemoryLedger:
    """Byte allocations per named component against one budget."""

    budget_bytes: int
    allocations: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.budget_bytes < 0:
            raise BenchmarkError(
                f"memory budget must be >= 0, got {self.budget_bytes}")

    def allocate(self, component: str, nbytes: int) -> None:
        """Set (replace) the allocation of ``component``."""
        if nbytes < 0:
            raise BenchmarkError(
                f"allocation for {component!r} must be >= 0, got {nbytes}")
        self.allocations[component] = nbytes

    def release(self, component: str) -> None:
        """Remove a component's allocation."""
        self.allocations.pop(component, None)

    def used_bytes(self) -> int:
        """Sum of all allocations."""
        return sum(self.allocations.values())

    def remaining_bytes(self) -> int:
        """Budget minus allocations (negative when over budget)."""
        return self.budget_bytes - self.used_bytes()

    def fits(self) -> bool:
        """True while allocations are within the budget."""
        return self.used_bytes() <= self.budget_bytes

    def utilisation(self) -> float:
        """Used fraction of the budget (0 when the budget is 0)."""
        if self.budget_bytes == 0:
            return 0.0
        return self.used_bytes() / self.budget_bytes

    def share(self, component: str) -> float:
        """Fraction of *used* memory held by ``component``."""
        used = self.used_bytes()
        if used == 0:
            return 0.0
        return self.allocations.get(component, 0) / used

    def report(self) -> str:
        """Fixed-width textual breakdown."""
        lines = [f"memory budget: {self.budget_bytes:,} B "
                 f"(used {self.used_bytes():,} B, "
                 f"{self.utilisation() * 100:.1f}%)"]
        for component, nbytes in sorted(self.allocations.items()):
            lines.append(f"  {component:<12s} {nbytes:>12,} B")
        return "\n".join(lines)
