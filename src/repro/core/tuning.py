"""Tuning advisor: the paper's Section 6.1 guidelines as code.

Three guidelines fall out of the evaluation:

1. **Prioritise position boundary** — under a fixed memory budget, a
   smaller boundary (more precise models) buys more latency than a
   fancier inner index.
2. **Increase index granularity** — larger SSTables (or level models)
   free memory that can then fund a smaller boundary.
3. **Wisely allocate the memory budget** — returns diminish once
   segments shrink to the I/O block size, and per-level boundaries
   should track the query distribution rather than level sizes.

:class:`TuningAdvisor` turns those rules into a concrete
recommendation: given a memory budget, a key sample and a workload
hint, it ranks the (kind, boundary) grid by analytic latency subject
to the budget, stops tightening at the diminishing-returns plateau,
and can assign per-level boundaries from observed read shares
(the Section 5.4 / future-direction allocator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cost_analysis import (
    analytic_frontier,
    expected_io_us,
    plateau_boundary,
)
from repro.core.memory import MemoryLedger
from repro.errors import BenchmarkError
from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.storage.cost_model import DEFAULT_COST_MODEL, CostModel


@dataclass(frozen=True)
class Recommendation:
    """The advisor's answer."""

    index_kind: IndexKind
    position_boundary: int
    expected_latency_us: float
    expected_index_bytes: int
    at_plateau: bool
    notes: Tuple[str, ...] = ()

    def summary(self) -> str:
        """One-line description."""
        return (f"{self.index_kind.value} @ boundary {self.position_boundary}"
                f" (~{self.expected_latency_us:.2f} us/lookup, "
                f"~{self.expected_index_bytes:,} B index)")


@dataclass
class TuningAdvisor:
    """Recommends (index type, boundary) under a memory budget."""

    cost: CostModel = DEFAULT_COST_MODEL
    boundaries: Sequence[int] = (256, 128, 64, 32, 16, 8, 4)
    kinds: Sequence[IndexKind] = ALL_KINDS

    def recommend(self, *, memory_budget_bytes: int,
                  sample_keys: Sequence[int], total_keys: int,
                  entry_bytes: int,
                  reserve_fraction: float = 0.5) -> Recommendation:
        """Pick the best configuration that fits the budget.

        ``reserve_fraction`` of the budget is kept for bloom filters
        and the write buffer (guideline 3: do not starve the other
        components).
        """
        if not sample_keys:
            raise BenchmarkError("advisor needs a non-empty key sample")
        index_budget = int(memory_budget_bytes * (1.0 - reserve_fraction))
        grid = analytic_frontier(self.cost, entry_bytes, self.boundaries,
                                 self.kinds, sample_keys, total_keys)
        plateau = plateau_boundary(entry_bytes, self.cost.block_size)
        notes: List[str] = []

        feasible: List[Tuple[float, float, IndexKind, int]] = []
        for kind, per_boundary in grid.items():
            for boundary, point in per_boundary.items():
                if point["memory_bytes"] > index_budget:
                    continue
                # Guideline 3: tightening beyond the plateau buys nothing;
                # skip configurations strictly below it if a plateau-level
                # one from the same kind already fits.
                if boundary < plateau and plateau in per_boundary and \
                        per_boundary[plateau]["memory_bytes"] <= index_budget:
                    continue
                feasible.append((point["latency_us"], point["memory_bytes"],
                                 kind, boundary))
        best: Optional[Tuple[float, float, IndexKind, int]] = None
        if feasible:
            # Latency differences within a couple of percent are noise
            # (I/O dominates — Observation 1); inside that band the
            # memory saved by a learned index is the real win.
            fastest = min(point[0] for point in feasible)
            band = [point for point in feasible
                    if point[0] <= fastest * 1.02]
            memory, latency, kind, boundary = min(
                (point[1], point[0], point[2], point[3]) for point in band)
            best = (latency, memory, kind, boundary)
        if best is None:
            # Nothing fits: recommend the most memory-frugal point.
            frugal = min(
                ((point["memory_bytes"], point["latency_us"], kind, boundary)
                 for kind, per_boundary in grid.items()
                 for boundary, point in per_boundary.items()))
            notes.append("budget too small: recommending the most frugal "
                         "configuration, consider larger SSTables or level "
                         "granularity")
            memory, latency, kind, boundary = frugal
            return Recommendation(index_kind=kind,
                                  position_boundary=boundary,
                                  expected_latency_us=latency,
                                  expected_index_bytes=int(memory),
                                  at_plateau=boundary <= plateau,
                                  notes=tuple(notes))
        latency, memory, kind, boundary = best
        if boundary <= plateau:
            notes.append(
                f"boundary {boundary} is at/below the I/O plateau "
                f"({plateau}); extra memory would buy little")
        return Recommendation(index_kind=kind, position_boundary=boundary,
                              expected_latency_us=latency,
                              expected_index_bytes=int(memory),
                              at_plateau=boundary <= plateau,
                              notes=tuple(notes))

    # -- per-level bloom allocation (Monkey, cited by Section 5.4) ----------

    def allocate_bloom_bits(self, *, level_entries: Dict[int, int],
                            total_bloom_bits: int,
                            max_bits_per_key: int = 20) -> Dict[int, int]:
        """Monkey-style bloom budget split: bits/key per level.

        Every negative lookup probes the filters of all levels above
        its target, so total cost tracks the *sum of false-positive
        rates*.  A bit of filter memory buys an exponential FPR drop,
        and a bit/key on a small shallow level costs few absolute bits
        — so the greedy best-marginal allocation gives shallow levels
        more bits/key than the deepest level, exactly Monkey's result
        (the paper cites this as the analogue of its per-level boundary
        insight).
        """
        import math

        if total_bloom_bits <= 0:
            raise BenchmarkError("bloom budget must be positive")
        ln2_sq = math.log(2) ** 2

        def fpr(bits_per_key: int) -> float:
            return math.exp(-bits_per_key * ln2_sq)

        bits = {level: 0 for level in level_entries}
        spent = 0
        while True:
            best_level = None
            best_gain = 0.0
            for level, entries in level_entries.items():
                if bits[level] >= max_bits_per_key:
                    continue
                extra = entries  # one more bit/key costs `entries` bits
                if spent + extra > total_bloom_bits:
                    continue
                gain = (fpr(bits[level]) - fpr(bits[level] + 1)) / extra
                if gain > best_gain:
                    best_gain = gain
                    best_level = level
            if best_level is None:
                return bits
            bits[best_level] += 1
            spent += level_entries[best_level]

    # -- per-level boundary allocation (Section 5.4 insight) ----------------

    def allocate_level_boundaries(
            self, *, level_entries: Dict[int, int],
            level_read_shares: Dict[int, float],
            bytes_per_key_at: Dict[int, float],
            index_budget_bytes: int, entry_bytes: int,
            start_boundary: int = 256) -> Dict[int, int]:
        """Assign per-level boundaries proportional to read pressure.

        Starts every level at ``start_boundary`` and greedily halves the
        boundary of whichever level has the best marginal gain —
        read-share-weighted I/O saving per extra index byte — until the
        budget is exhausted or every level reaches the plateau.

        ``bytes_per_key_at`` maps a boundary to the index bytes/key it
        costs (measured or estimated); missing boundaries are
        interpolated as inversely proportional to the boundary, which
        matches every segment-based index.
        """
        if index_budget_bytes <= 0:
            raise BenchmarkError("index budget must be positive")
        plateau = plateau_boundary(entry_bytes, self.cost.block_size)

        def cost_of(level: int, boundary: int) -> float:
            if boundary in bytes_per_key_at:
                per_key = bytes_per_key_at[boundary]
            else:
                ref_boundary, ref_cost = next(iter(bytes_per_key_at.items()))
                per_key = ref_cost * ref_boundary / boundary
            return per_key * level_entries[level]

        boundaries = {level: start_boundary for level in level_entries}
        ledger = MemoryLedger(index_budget_bytes)
        for level in level_entries:
            ledger.allocate(f"L{level}", int(cost_of(level, start_boundary)))
        if not ledger.fits():
            return boundaries  # budget cannot even fund the loosest setting

        while True:
            best_level = None
            best_gain = 0.0
            best_extra = 0
            for level, boundary in boundaries.items():
                if boundary // 2 < plateau:
                    continue
                halved = boundary // 2
                extra = cost_of(level, halved) - cost_of(level, boundary)
                if ledger.used_bytes() + extra > index_budget_bytes:
                    continue
                io_gain = (expected_io_us(self.cost, boundary, entry_bytes)
                           - expected_io_us(self.cost, halved, entry_bytes))
                share = level_read_shares.get(level, 0.0)
                gain = share * io_gain / max(1.0, extra)
                if gain > best_gain:
                    best_gain = gain
                    best_level = level
                    best_extra = int(extra)
            if best_level is None:
                return boundaries
            boundaries[best_level] //= 2
            ledger.allocate(
                f"L{best_level}",
                ledger.allocations[f"L{best_level}"] + best_extra)
