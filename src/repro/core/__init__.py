"""The paper's core contribution: configuration space, testbed, tuning.

* :mod:`repro.core.config` — the (index type, boundary, granularity)
  configuration space of Section 4.1.
* :mod:`repro.core.testbed` — the unified measurement platform of
  Section 4.2.
* :mod:`repro.core.cost_analysis` — the analytic cost model of
  Section 4.
* :mod:`repro.core.tuning` — the Section 6.1 guidelines as an advisor.
* :mod:`repro.core.memory` — memory budget bookkeeping.
"""

from repro.core.config import (
    PAPER_BOUNDARIES,
    PAPER_SSTABLE_MIB,
    BenchConfig,
    ConfigurationSpace,
)
from repro.core.cost_analysis import (
    MemoryEstimate,
    analytic_frontier,
    estimate_index_memory,
    expected_io_blocks,
    expected_io_us,
    expected_point_lookup_us,
    expected_search_us,
    inner_index_cost_us,
    plateau_boundary,
)
from repro.core.memory import MemoryLedger
from repro.core.testbed import MemoryMetrics, PhaseMetrics, Testbed
from repro.core.tuning import Recommendation, TuningAdvisor

__all__ = [
    "BenchConfig",
    "ConfigurationSpace",
    "PAPER_BOUNDARIES",
    "PAPER_SSTABLE_MIB",
    "Testbed",
    "PhaseMetrics",
    "MemoryMetrics",
    "MemoryLedger",
    "TuningAdvisor",
    "Recommendation",
    "expected_io_blocks",
    "expected_io_us",
    "expected_search_us",
    "expected_point_lookup_us",
    "plateau_boundary",
    "inner_index_cost_us",
    "estimate_index_memory",
    "analytic_frontier",
    "MemoryEstimate",
]
