"""The paper's configuration space: index type x boundary x granularity.

Section 4.1 defines three tuning axes for learned indexes in
LSM-trees.  :class:`BenchConfig` is one point in that space (plus the
workload scale parameters), and :class:`ConfigurationSpace` enumerates
a grid of them — the object every experiment sweeps over.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import BenchmarkError
from repro.indexes.registry import ALL_KINDS, IndexKind
from repro.lsm.options import Granularity, Options

#: The boundary sweep of the paper's Figure 6.
PAPER_BOUNDARIES: Tuple[int, ...] = (256, 128, 64, 32, 16, 8)

#: The SSTable sizes of the paper's Figure 8 (MiB).
PAPER_SSTABLE_MIB: Tuple[int, ...] = (8, 16, 32, 64, 128)


@dataclass(frozen=True)
class BenchConfig:
    """One configuration point plus the scale it runs at."""

    index_kind: IndexKind = IndexKind.FP
    position_boundary: int = 32
    granularity: Granularity = Granularity.FILE
    sstable_bytes: int = 2 * 1024 * 1024
    write_buffer_bytes: int = 512 * 1024
    value_capacity: int = 1004
    size_ratio: int = 10
    bloom_bits_per_key: int = 10
    #: Data-block size; None scales with the entry so every scale keeps
    #: the paper's ~4 x 1 KiB entries per 4 KiB LevelDB block.
    data_block_bytes: Optional[int] = None
    dataset: str = "random"
    n_keys: int = 100_000
    seed: int = 0

    def to_options(self) -> Options:
        """Materialise the engine options for this configuration."""
        options = Options(
            index_kind=self.index_kind,
            position_boundary=self.position_boundary,
            granularity=self.granularity,
            sstable_bytes=self.sstable_bytes,
            write_buffer_bytes=self.write_buffer_bytes,
            value_capacity=self.value_capacity,
            size_ratio=self.size_ratio,
            bloom_bits_per_key=self.bloom_bits_per_key,
            data_block_bytes=(self.data_block_bytes
                              if self.data_block_bytes is not None
                              else 4 * (20 + self.value_capacity)),
        )
        options.validate()
        return options

    def label(self) -> str:
        """Short human-readable description for report rows."""
        gran = "L" if self.granularity is Granularity.LEVEL else \
            f"{self.sstable_bytes // (1024 * 1024)}MiB"
        return (f"{self.index_kind.value}/b={self.position_boundary}"
                f"/sst={gran}")


@dataclass
class ConfigurationSpace:
    """A grid over the three axes (plus dataset), iterated lazily."""

    index_kinds: Sequence[IndexKind] = field(default_factory=lambda: ALL_KINDS)
    boundaries: Sequence[int] = field(
        default_factory=lambda: PAPER_BOUNDARIES)
    granularities: Sequence[Granularity] = field(
        default_factory=lambda: (Granularity.FILE,))
    sstable_sizes: Sequence[int] = field(
        default_factory=lambda: (2 * 1024 * 1024,))
    datasets: Sequence[str] = field(default_factory=lambda: ("random",))
    base: BenchConfig = field(default_factory=BenchConfig)

    def __post_init__(self) -> None:
        if not self.index_kinds or not self.boundaries:
            raise BenchmarkError("configuration space axes cannot be empty")

    def __iter__(self) -> Iterator[BenchConfig]:
        for kind, boundary, granularity, sstable, dataset in \
                itertools.product(self.index_kinds, self.boundaries,
                                  self.granularities, self.sstable_sizes,
                                  self.datasets):
            yield BenchConfig(
                index_kind=kind,
                position_boundary=boundary,
                granularity=granularity,
                sstable_bytes=sstable,
                write_buffer_bytes=self.base.write_buffer_bytes,
                value_capacity=self.base.value_capacity,
                size_ratio=self.base.size_ratio,
                bloom_bits_per_key=self.base.bloom_bits_per_key,
                dataset=dataset,
                n_keys=self.base.n_keys,
                seed=self.base.seed,
            )

    def __len__(self) -> int:
        return (len(self.index_kinds) * len(self.boundaries)
                * len(self.granularities) * len(self.sstable_sizes)
                * len(self.datasets))

    def configs(self) -> List[BenchConfig]:
        """Eager list of every configuration in the grid."""
        return list(self)
