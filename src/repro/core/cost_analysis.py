"""The paper's Section 4 analytic cost model.

Data-clustered indexes answer a lookup in three steps whose costs the
paper derives:

1. *inner index access* — depends on the index type (segment-array
   binary search, B+-tree walk, recursive models, ...);
2. *segment fetch* — I/O bounded by ``O(2 epsilon / B)`` blocks, where
   ``B`` is the I/O block size;
3. *in-segment binary search* — ``O(log 2 epsilon)`` probes.

The functions here evaluate those formulas against a
:class:`~repro.storage.cost_model.CostModel` plus give sample-based
memory estimators, so the tuning advisor can rank configurations
without building full databases.  Tests validate the analytic numbers
against testbed measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.indexes.registry import IndexFactory, IndexKind
from repro.storage.cost_model import CostModel


def expected_io_blocks(boundary: int, entry_bytes: int,
                       block_size: int) -> float:
    """Blocks fetched for one segment read (the paper's 2e/B bound).

    Adds the expected extra straddled block (a segment rarely starts
    block-aligned): ceil(segment_bytes / block) + segment's chance of
    crossing one more boundary.
    """
    segment_bytes = boundary * entry_bytes
    whole = segment_bytes / block_size
    return whole + 1.0 - (1.0 / max(1.0, whole + 1.0))


def expected_io_us(cost: CostModel, boundary: int, entry_bytes: int) -> float:
    """Simulated time of the segment fetch for one point lookup."""
    blocks = expected_io_blocks(boundary, entry_bytes, cost.block_size)
    return cost.read_us(max(1, round(blocks)))


def expected_search_us(cost: CostModel, boundary: int) -> float:
    """Simulated time of the in-segment binary search."""
    return cost.segment_search_us(max(2, boundary))


def expected_point_lookup_us(cost: CostModel, boundary: int,
                             entry_bytes: int, inner_index_us: float,
                             levels_probed: float = 1.0,
                             bloom_probes: float = 2.0) -> float:
    """End-to-end analytic point-lookup latency.

    ``levels_probed`` is how many levels fetch a segment (bloom filters
    keep this near 1); ``bloom_probes`` is the expected number of
    membership tests across levels.
    """
    per_level = (inner_index_us
                 + expected_io_us(cost, boundary, entry_bytes)
                 + expected_search_us(cost, boundary))
    return levels_probed * per_level + bloom_probes * cost.bloom_probe_us


def plateau_boundary(entry_bytes: int, block_size: int) -> int:
    """The boundary below which I/O stops improving (Observation 2).

    The paper: performance "plateaus once the segment size becomes
    smaller than or equal to the I/O block size" — a one-block segment
    cannot fetch less than one block, so tightening below
    ``block_size / entry_bytes`` buys nothing.
    """
    return max(2, block_size // entry_bytes)


@dataclass(frozen=True)
class MemoryEstimate:
    """A sample-extrapolated index memory estimate."""

    kind: IndexKind
    boundary: int
    sample_n: int
    sample_bytes: int
    total_n: int

    @property
    def bytes_per_key(self) -> float:
        """Index bytes per indexed key on the sample."""
        return self.sample_bytes / max(1, self.sample_n)

    @property
    def estimated_total_bytes(self) -> int:
        """Linear extrapolation to the full key count."""
        return int(self.bytes_per_key * self.total_n)


def estimate_index_memory(kind: IndexKind, sample_keys: Sequence[int],
                          boundary: int, total_n: int) -> MemoryEstimate:
    """Estimate full-dataset index memory from a sample build.

    Segment-based indexes grow linearly in segment count, and segment
    density is a property of the key distribution, so a per-key density
    measured on a sample extrapolates well.  RMI's second layer is also
    sized per key for a fixed error target, so the same extrapolation
    applies (slightly pessimistic for very smooth distributions).
    """
    factory = IndexFactory(kind, boundary)
    index = factory.build(list(sample_keys))
    return MemoryEstimate(kind=kind, boundary=boundary,
                          sample_n=len(sample_keys),
                          sample_bytes=index.size_bytes(),
                          total_n=total_n)


def inner_index_cost_us(kind: IndexKind, cost: CostModel,
                        segments_hint: int = 1024,
                        btree_order: int = 16,
                        epsilon_recursive: int = 4,
                        pgm_levels: int = 2,
                        cht_height: int = 3) -> float:
    """Analytic inner-index (prediction) cost per index type.

    These mirror each index's ``expected_lookup_cost_us`` using
    structure-size hints, for advising before anything is built.
    """
    if kind is IndexKind.FP:
        return cost.binary_search_us(segments_hint)
    if kind is IndexKind.PLR:
        return cost.binary_search_us(segments_hint) + cost.model_eval_us
    if kind is IndexKind.FT:
        height = max(1, math.ceil(math.log(max(2, segments_hint),
                                           max(2, btree_order))))
        per_node = cost.index_compare_us * (math.log2(btree_order) + 1)
        return height * per_node + cost.model_eval_us
    if kind is IndexKind.PGM:
        window = 2 * epsilon_recursive + 2
        return pgm_levels * (cost.model_eval_us
                             + cost.binary_search_us(window))
    if kind is IndexKind.RS:
        return (cost.index_compare_us
                + cost.binary_search_us(max(2, segments_hint // 2))
                + cost.model_eval_us)
    if kind is IndexKind.PLEX:
        return (cht_height * cost.index_compare_us
                + cost.binary_search_us(4) + cost.model_eval_us)
    if kind is IndexKind.RMI:
        return 2 * cost.model_eval_us
    raise ValueError(f"unknown kind: {kind}")  # pragma: no cover


def analytic_frontier(cost: CostModel, entry_bytes: int,
                      boundaries: Sequence[int],
                      kinds: Sequence[IndexKind],
                      sample_keys: Sequence[int],
                      total_n: int) -> Dict[IndexKind, Dict[int, Dict[str, float]]]:
    """Latency/memory grid over (kind, boundary) from the analytic model.

    Returns ``{kind: {boundary: {"latency_us": ..., "memory_bytes": ...}}}``
    — the advisor's search space.
    """
    out: Dict[IndexKind, Dict[int, Dict[str, float]]] = {}
    for kind in kinds:
        per_kind: Dict[int, Dict[str, float]] = {}
        for boundary in boundaries:
            estimate = estimate_index_memory(kind, sample_keys, boundary,
                                             total_n)
            segments_hint = max(
                2, int(estimate.sample_n
                       / max(1.0, estimate.sample_bytes / 28.0)))
            inner_us = inner_index_cost_us(kind, cost,
                                           segments_hint=segments_hint)
            latency = expected_point_lookup_us(cost, boundary, entry_bytes,
                                               inner_us)
            per_kind[boundary] = {
                "latency_us": latency,
                "memory_bytes": float(estimate.estimated_total_bytes),
            }
        out[kind] = per_kind
    return out
