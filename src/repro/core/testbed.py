"""The unified testbed: load a database, run workloads, collect metrics.

This is the reproduction of the paper's Section 4.2 platform: a single
object that materialises an :class:`~repro.lsm.db.LSMTree` from a
:class:`~repro.core.config.BenchConfig`, bulk-loads a dataset through
the normal write path (so flushes and compactions build the learned
indexes exactly as in production), and executes measured workload
phases.  Every phase returns simulated-time metrics broken down into
the paper's stages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import BenchConfig
from repro.lsm.db import LSMTree
from repro.lsm.options import Options
from repro.obs.registry import MetricsRegistry, MetricsWindow, global_registry
from repro.obs.trace import Tracer
from repro.storage.block_device import BlockDevice
from repro.storage.stats import (
    BLOCKS_READ,
    COMPACT_BYTES_IN,
    COMPACTION_STAGES,
    SEGMENTS_FETCHED,
    Stage,
    StatsSnapshot,
)
from repro.workloads import datasets as dataset_mod
from repro.workloads.ycsb import YCSBWorkload, replay


@dataclass(frozen=True)
class PhaseMetrics:
    """Simulated-time metrics for one measured workload phase."""

    ops: int
    total_us: float
    stage_us: Dict[str, float]
    counters: Dict[str, float]
    #: Per-op-type latency percentiles recorded during the phase
    #: (``{op: {"p50": ..., "p99": ...}}``); None when tracing is off.
    percentiles: Optional[Dict[str, Dict[str, float]]] = None
    #: Windowed throughput/latency snapshots (YCSB phases only).
    windows: Optional[List[Dict[str, float]]] = None

    @property
    def avg_us(self) -> float:
        """Mean simulated microseconds per operation."""
        return self.total_us / self.ops if self.ops else 0.0

    def stage_avg_us(self, stage: Stage) -> float:
        """Mean per-op simulated time spent in ``stage``."""
        if not self.ops:
            return 0.0
        return self.stage_us.get(stage.value, 0.0) / self.ops

    def counter(self, name: str) -> float:
        """Total counter change during the phase."""
        return self.counters.get(name, 0.0)

    def percentile(self, op: str, name: str) -> float:
        """A recorded latency percentile (e.g. ``("get", "p99")``).

        Returns 0.0 when tracing was disabled or the op never ran.
        """
        if not self.percentiles:
            return 0.0
        return self.percentiles.get(op, {}).get(name, 0.0)

    def blocks_read_per_op(self) -> float:
        """Mean device blocks fetched per operation."""
        if not self.ops:
            return 0.0
        return self.counters.get(BLOCKS_READ, 0.0) / self.ops


@dataclass(frozen=True)
class MemoryMetrics:
    """In-memory footprint by component after a phase."""

    index_bytes: int
    bloom_bytes: int
    buffer_bytes: int

    @property
    def total_bytes(self) -> int:
        """Sum over all components."""
        return self.index_bytes + self.bloom_bytes + self.buffer_bytes


@dataclass
class Testbed:
    """One database under measurement."""

    #: Not a pytest test class (collection hint).
    __test__ = False

    options: Options
    device: Optional[BlockDevice] = None
    seed: int = 0
    #: Attach a tracer so phases report latency percentiles.
    observe: bool = True
    #: Keep every Nth root span verbatim (0 = exemplars only).
    sample_every: int = 0
    #: Metrics sink; None means the process-wide default registry.
    registry: Optional[MetricsRegistry] = None
    db: LSMTree = field(init=False)
    tracer: Optional[Tracer] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.observe:
            if self.registry is None:
                self.registry = global_registry()
            self.tracer = Tracer(sample_every=self.sample_every,
                                 registry=self.registry)
        self.db = LSMTree(self.options, device=self.device,
                          tracer=self.tracer)
        self._rng = random.Random(self.seed)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_config(cls, config: BenchConfig,
                    device: Optional[BlockDevice] = None) -> "Testbed":
        """Materialise a testbed for one configuration point."""
        return cls(options=config.to_options(), device=device,
                   seed=config.seed)

    # -- loading -----------------------------------------------------------

    def value_for(self, key: int) -> bytes:
        """Deterministic value payload for ``key`` (fits the capacity)."""
        raw = b"v%x" % key
        return raw[: self.options.value_capacity]

    def load_keys(self, keys: Sequence[int], shuffle: bool = True) -> None:
        """Insert ``keys`` through the write path and settle compactions.

        Insertion order is shuffled by default: sorted bulk loads never
        trigger overlapping compactions and would under-exercise the
        engine compared to the paper's fill phase.
        """
        order = list(keys)
        if shuffle:
            self._rng.shuffle(order)
        put = self.db.put
        value_for = self.value_for
        for key in order:
            put(key, value_for(key))
        self.settle()

    def load_dataset(self, name: str, n: int) -> List[int]:
        """Generate and load a named dataset; returns its sorted keys."""
        keys = dataset_mod.generate(name, n, seed=self.seed)
        self.load_keys(keys)
        return keys

    def bulk_load(self, keys: Sequence[int]) -> None:
        """Offline leveled fill (no compaction churn) for read phases."""
        self.db.bulk_ingest(keys, value_for=self.value_for, seed=self.seed)

    def bulk_load_dataset(self, name: str, n: int) -> List[int]:
        """Generate a dataset and bulk-load it; returns its sorted keys."""
        keys = dataset_mod.generate(name, n, seed=self.seed)
        self.bulk_load(keys)
        return keys

    def level_keys(self) -> Dict[int, List[int]]:
        """Per-level key sets recorded by the last bulk load."""
        return getattr(self.db, "last_ingest_levels", {})

    def settle(self) -> None:
        """Flush the buffer and run every due compaction."""
        self.db.flush()
        self.db.maybe_compact()

    # -- measured phases -----------------------------------------------------

    def _hist_base(self) -> Optional[Dict[str, object]]:
        """Histogram baseline so a phase reports only its own samples."""
        if self.tracer is None or self.registry is None:
            return None
        return self.registry.snapshot()

    def _phase_percentiles(self, base) -> Optional[Dict[str, Dict[str,
                                                                  float]]]:
        if base is None or self.registry is None:
            return None
        return {op: histogram.percentiles()
                for op, histogram in self.registry.delta_since(base).items()}

    def _phase(self, before: StatsSnapshot, ops: int,
               base=None, windows=None) -> PhaseMetrics:
        delta = before.delta(self.db.stats)
        stage_us = {stage.value: us for stage, us in delta.stage_us.items()}
        return PhaseMetrics(ops=ops,
                            total_us=delta.read_time(),
                            stage_us=stage_us,
                            counters=dict(delta.counters),
                            percentiles=self._phase_percentiles(base),
                            windows=windows)

    def run_point_lookups(self, keys: Sequence[int]) -> PhaseMetrics:
        """Execute point lookups and return read-path metrics."""
        before = self.db.stats.snapshot()
        base = self._hist_base()
        get = self.db.get
        for key in keys:
            get(key)
        return self._phase(before, len(keys), base)

    def run_multi_get(self, keys: Sequence[int], batch_size: int,
                      coalesce: bool = True) -> PhaseMetrics:
        """Execute point lookups in ``batch_size`` MultiGet batches.

        The same key stream as :meth:`run_point_lookups`, drained
        through :meth:`~repro.lsm.db.LSMTree.multi_get` instead of one
        ``get`` per key; compare the two phases' metrics to see what a
        batch amortizes.
        """
        before = self.db.stats.snapshot()
        base = self._hist_base()
        multi_get = self.db.multi_get
        for start in range(0, len(keys), batch_size):
            multi_get(keys[start:start + batch_size], coalesce=coalesce)
        return self._phase(before, len(keys), base)

    def run_range_lookups(self, start_keys: Sequence[int],
                          length: int) -> PhaseMetrics:
        """Execute fixed-length scans from each start key."""
        before = self.db.stats.snapshot()
        base = self._hist_base()
        scan = self.db.scan
        for key in start_keys:
            scan(key, length)
        return self._phase(before, len(start_keys), base)

    def run_writes(self, keys: Sequence[int]) -> PhaseMetrics:
        """Execute puts (write-only phase for compaction studies).

        ``total_us`` for a write phase is write-path plus compaction
        time rather than read time.
        """
        before = self.db.stats.snapshot()
        base = self._hist_base()
        put = self.db.put
        value_for = self.value_for
        for key in keys:
            put(key, value_for(key))
        self.settle()
        delta = before.delta(self.db.stats)
        stage_us = {stage.value: us for stage, us in delta.stage_us.items()}
        compaction_us = sum(delta.stage_us.get(stage, 0.0)
                            for stage in COMPACTION_STAGES)
        write_us = delta.stage_us.get(Stage.WRITE_PATH, 0.0)
        return PhaseMetrics(ops=len(keys),
                            total_us=compaction_us + write_us,
                            stage_us=stage_us,
                            counters=dict(delta.counters),
                            percentiles=self._phase_percentiles(base))

    def run_ycsb(self, workload: YCSBWorkload, n_ops: int,
                 write_batch_size: int = 1,
                 read_batch_size: int = 1,
                 window_ops: int = 0) -> PhaseMetrics:
        """Execute a YCSB operation stream; returns whole-phase metrics.

        ``write_batch_size > 1`` groups consecutive updates/inserts
        into :class:`~repro.lsm.write_batch.WriteBatch` group commits;
        ``read_batch_size > 1`` mirrors it on the read side, draining
        consecutive READs through one
        :meth:`~repro.lsm.db.LSMTree.multi_get` per batch (see
        :func:`repro.workloads.ycsb.replay`).  ``window_ops > 0`` (with
        tracing on) closes a throughput/percentile window every that
        many operations; the rows come back in ``PhaseMetrics.windows``
        and stay in the registry for export.
        """
        before = self.db.stats.snapshot()
        base = self._hist_base()
        db = self.db
        window = None
        windows_from = 0
        if window_ops and self.tracer is not None and self.registry:
            windows_from = len(self.registry.windows)
            window = MetricsWindow(self.registry, db.stats.total_time,
                                   window_ops)
        replay(db, workload.operations(n_ops), self.value_for,
               write_batch_size=write_batch_size,
               read_batch_size=read_batch_size,
               window=window)
        windows = None
        if window is not None:
            window.finish()
            windows = list(self.registry.windows[windows_from:])
        delta = before.delta(db.stats)
        stage_us = {stage.value: us for stage, us in delta.stage_us.items()}
        return PhaseMetrics(ops=n_ops,
                            total_us=delta.total_time(),
                            stage_us=stage_us,
                            counters=dict(delta.counters),
                            percentiles=self._phase_percentiles(base),
                            windows=windows)

    # -- memory ------------------------------------------------------------

    def memory(self) -> MemoryMetrics:
        """Current in-memory footprint by component."""
        breakdown = self.db.memory_breakdown()
        return MemoryMetrics(index_bytes=breakdown["index"],
                             bloom_bytes=breakdown["bloom"],
                             buffer_bytes=breakdown["buffer"])

    def segments_fetched(self) -> float:
        """Total segments fetched since the database opened."""
        return self.db.stats.get(SEGMENTS_FETCHED)

    def compaction_bytes_in(self) -> float:
        """Total bytes read into compactions since open."""
        return self.db.stats.get(COMPACT_BYTES_IN)

    def close(self) -> None:
        """Release the database."""
        self.db.close()
