"""Deterministic latency model calibrated against the paper's Table 1.

The paper's testbed runs on an i9-13900K with an NVMe SSD; its Table 1
reports the per-stage cost of a point lookup with the PLR index at
position boundary 10:

========================  ==========
Stage                     Time
========================  ==========
Table lookup              0.07-0.19 us
Prediction                0.15-0.17 us
Disk I/O (segment fetch)  ~2.1 us
Binary search             ~0.16 us
========================  ==========

The constants below are fitted to those rows:

* a segment fetch is one seek (``seek_us``) plus one transfer per 4 KiB
  block (``block_read_us``); at boundary 10 with ~1 KiB entries the
  segment spans 3 blocks, giving 1.5 + 3 x 0.25 = 2.25 us = Table 1's
  2.1 us;
* in-memory index comparisons cost ``index_compare_us`` each: a PLR
  inner binary search over a few thousand segments takes ~12 steps,
  0.12 us + one model evaluation = Table 1's 0.15-0.17 us "prediction";
* probing an entry inside a fetched segment costs ``entry_probe_us``
  (decode + compare): log2(10) = 3.3 probes = 0.17 us = Table 1's
  binary-search row.

Compaction constants are fitted to Section 5.3: moving one ~1 KiB entry
through a compaction costs ~0.5 us (read + merge + write), so a
single-pass training algorithm at ``train_visit_us`` per key lands below
5% of compaction time and PLEX's multi-pass self-tuning lands at
10-15%, matching Figure 9.

Everything here is a plain dataclass: experiments that want a different
hardware profile construct their own instance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Simulated cost constants (all values in microseconds).

    The defaults model the paper's machine; see the module docstring for
    the calibration.  Instances are immutable so a single model can be
    shared by every component of a database.
    """

    #: Device block size in bytes; LevelDB's (and the paper's) 4 KiB.
    block_size: int = 4096

    # Read path -------------------------------------------------------
    #: Fixed cost of positioning one pread (queueing + command overhead).
    seek_us: float = 1.5
    #: Transfer cost per 4 KiB block read.
    block_read_us: float = 0.25
    #: One comparison step in an in-memory index (fence/segment arrays).
    index_compare_us: float = 0.01
    #: Evaluating one linear/spline model (multiply-add + clamp).
    model_eval_us: float = 0.05
    #: One probe of an entry inside a fetched segment (decode + compare).
    entry_probe_us: float = 0.05
    #: One bloom-filter membership test.
    bloom_probe_us: float = 0.08
    #: Copying one additional sequential block during a range scan.
    scan_block_us: float = 0.25
    #: Serving one block from the in-memory LRU block cache (a memcpy,
    #: ~an order of magnitude below ``block_read_us`` + seek).
    cache_block_us: float = 0.02
    #: Decompressing one byte of a stored data block (zlib inflate runs
    #: ~500 MB/s on the paper's CPU: 0.002 us/byte = 8 us per 4 KiB).
    decompress_byte_us: float = 0.002
    #: Verifying one byte of CRC32C (hardware-assisted on the i9: ~20
    #: GB/s, so effectively two orders below the transfer cost).
    checksum_byte_us: float = 0.00005

    # Write path ------------------------------------------------------
    #: Appending one entry to the WAL + memtable insert.
    write_entry_us: float = 0.35
    #: Fixed per-commit overhead of one durable WAL append (frame
    #: assembly + submission).  A :class:`~repro.lsm.write_batch.WriteBatch`
    #: of K records pays this once instead of K times (group commit).
    wal_commit_us: float = 0.9
    #: Transfer cost per block written (serialisation + checksum heavy,
    #: hence larger than ``block_read_us``; see module docstring).
    block_write_us: float = 1.0
    #: Merging one entry during compaction (decode, compare, re-encode).
    merge_entry_us: float = 0.15
    #: Compressing one byte of a data block at flush/compaction time
    #: (zlib deflate at low levels: ~100 MB/s = 0.01 us/byte).
    compress_byte_us: float = 0.01
    #: Visiting one key during index training (one pass of one key).
    #: Calibrated so a single-pass segmentation costs <5% of moving a
    #: ~1 KiB entry through a compaction (Section 5.3).
    train_visit_us: float = 0.015
    #: Serialising one byte of model state.
    model_write_byte_us: float = 0.0005

    # -- derived helpers ----------------------------------------------

    def blocks_spanned(self, offset: int, length: int) -> int:
        """Number of device blocks a ``(offset, length)`` read touches."""
        if length <= 0:
            return 0
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        return last - first + 1

    def read_us(self, nblocks: int, *, seeks: int = 1) -> float:
        """Cost of fetching ``nblocks`` with ``seeks`` pread calls."""
        return seeks * self.seek_us + nblocks * self.block_read_us

    def write_us(self, nblocks: int) -> float:
        """Cost of writing ``nblocks`` sequentially."""
        return nblocks * self.block_write_us

    def binary_search_us(self, n: int) -> float:
        """Cost of a binary search over ``n`` in-memory index entries."""
        if n <= 1:
            return self.index_compare_us
        return self.index_compare_us * (math.log2(n) + 1.0)

    def segment_search_us(self, n: int) -> float:
        """Cost of a binary search over ``n`` entries of a fetched segment."""
        if n <= 1:
            return self.entry_probe_us
        return self.entry_probe_us * (math.log2(n) + 1.0)

    def compress_us(self, raw_bytes: int) -> float:
        """Cost of compressing ``raw_bytes`` of data-block payload."""
        return raw_bytes * self.compress_byte_us

    def decompress_us(self, raw_bytes: int) -> float:
        """Cost of decompressing a block back to ``raw_bytes``."""
        return raw_bytes * self.decompress_byte_us

    def checksum_us(self, nbytes: int) -> float:
        """Cost of checksumming ``nbytes`` (compute or verify)."""
        return nbytes * self.checksum_byte_us

    def train_us(self, key_visits: int) -> float:
        """Cost of ``key_visits`` training-pass key visits."""
        return key_visits * self.train_visit_us

    def model_write_us(self, nbytes: int) -> float:
        """Cost of serialising ``nbytes`` of model state and writing it."""
        nblocks = (nbytes + self.block_size - 1) // self.block_size
        return nbytes * self.model_write_byte_us + self.write_us(nblocks)


#: A shared default instance; components that are not given an explicit
#: model fall back to this one.
DEFAULT_COST_MODEL = CostModel()
