"""Hardware profiles: alternative cost-model calibrations.

The paper's machine is a fast NVMe box, and several of its insights are
statements about the I/O:CPU ratio on that hardware ("I/O dominates",
"returns diminish at the block size").  These presets let every
experiment re-run under different ratios:

* ``PAPER_NVME`` — the default calibration (docs/cost-model.md);
* ``FAST_NVME`` — an Optane-class device: seeks approach DRAM, so CPU
  stages (prediction, search) matter relatively more;
* ``SATA_SSD`` — slower seeks and transfers: I/O dominates even harder,
  flattening differences between index types further;
* ``CLOUD_OBJECT`` — S3-like storage: enormous per-request latency, so
  the only thing that matters is *how many requests* a lookup makes —
  the regime where tight boundaries and level models pay most.

The `hardware` experiment sweeps one configuration across these
profiles and checks the ratio-dependent claims.
"""

from __future__ import annotations

from typing import Dict

from repro.storage.cost_model import CostModel

#: The default calibration (the paper's i9-13900K + NVMe testbed).
PAPER_NVME = CostModel()

#: Optane-class: near-memory seeks, fast transfers.
FAST_NVME = CostModel(
    seek_us=0.3,
    block_read_us=0.05,
    block_write_us=0.2,
)

#: SATA-era flash: slower everything on the device side.
SATA_SSD = CostModel(
    seek_us=60.0,
    block_read_us=1.5,
    block_write_us=4.0,
)

#: Object storage (S3-like): per-request latency towers over transfer.
CLOUD_OBJECT = CostModel(
    seek_us=15_000.0,
    block_read_us=2.0,
    block_write_us=5.0,
)

PROFILES: Dict[str, CostModel] = {
    "paper-nvme": PAPER_NVME,
    "fast-nvme": FAST_NVME,
    "sata-ssd": SATA_SSD,
    "cloud-object": CLOUD_OBJECT,
}


def get_profile(name: str) -> CostModel:
    """Look up a profile by name."""
    try:
        return PROFILES[name]
    except KeyError:
        valid = ", ".join(sorted(PROFILES))
        raise KeyError(
            f"unknown hardware profile {name!r}; expected one of: {valid}"
        ) from None


def io_cpu_ratio(model: CostModel, boundary: int = 10,
                 entry_bytes: int = 1024) -> float:
    """The profile's segment-fetch : CPU-stage ratio for one lookup."""
    nblocks = model.blocks_spanned(0, boundary * entry_bytes)
    io = model.read_us(nblocks)
    cpu = (model.segment_search_us(boundary) + model.model_eval_us
           + model.binary_search_us(4096))
    return io / cpu
