"""Pluggable per-block codecs for the block-based SSTable format.

A codec turns a raw data-block payload into a stored payload and back.
Following LevelDB, compression is advisory per block: if a codec fails
to shrink a block, the builder stores it raw under codec id 0, so the
codec byte persisted in each block trailer — not the table-wide option —
is what the reader dispatches on.

Codecs are registered by name (``Options.block_codec``) and by the
one-byte id written to disk.  The id namespace is append-only: ids are
part of the on-disk format and must never be reused.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ChecksumError


@dataclass(frozen=True)
class Codec:
    """One block codec: a stable on-disk id plus encode/decode."""

    codec_id: int
    name: str
    encode: Callable[[bytes], bytes]
    decode: Callable[[bytes], bytes]


def _identity(payload: bytes) -> bytes:
    return payload


_CODECS_BY_ID: Dict[int, Codec] = {}
_CODECS_BY_NAME: Dict[str, Codec] = {}


def register_codec(codec: Codec) -> Codec:
    """Register a codec under its id and name (both must be unused)."""
    if codec.codec_id in _CODECS_BY_ID:
        raise ValueError(f"codec id {codec.codec_id} already registered")
    if codec.name in _CODECS_BY_NAME:
        raise ValueError(f"codec name {codec.name!r} already registered")
    _CODECS_BY_ID[codec.codec_id] = codec
    _CODECS_BY_NAME[codec.name] = codec
    return codec


NONE_CODEC = register_codec(Codec(0, "none", _identity, _identity))

for _level, _cid in ((1, 1), (6, 2), (9, 3)):
    register_codec(Codec(
        _cid, f"zlib-{_level}",
        (lambda payload, level=_level: zlib.compress(payload, level)),
        zlib.decompress))


def codec_names() -> Tuple[str, ...]:
    """Registered codec names, in id order (for option validation)."""
    return tuple(c.name for _, c in sorted(_CODECS_BY_ID.items()))


def by_name(name: str) -> Codec:
    """Look up a codec by ``Options.block_codec`` name."""
    codec = _CODECS_BY_NAME.get(name)
    if codec is None:
        raise ValueError(
            f"unknown block codec {name!r}; registered: {codec_names()}")
    return codec


def by_id(codec_id: int, *, file: str, block: int) -> Codec:
    """Look up a codec by on-disk id; unknown ids mean corruption."""
    codec = _CODECS_BY_ID.get(codec_id)
    if codec is None:
        raise ChecksumError(file, "data", block=block,
                            detail=f"unknown codec id {codec_id}")
    return codec


def encode_block(codec: Codec, raw: bytes) -> Tuple[int, bytes]:
    """Encode one block, falling back to raw when nothing is saved.

    Returns ``(stored codec id, stored payload)``; the stored id is 0
    when the codec's output was not strictly smaller than the input.
    """
    if codec.codec_id == 0:
        return 0, raw
    stored = codec.encode(raw)
    if len(stored) >= len(raw):
        return 0, raw
    return codec.codec_id, stored


def decode_block(codec_id: int, payload: bytes, raw_len: int, *,
                 file: str, block: int) -> bytes:
    """Decode one stored block payload and validate its raw length."""
    codec = by_id(codec_id, file=file, block=block)
    try:
        raw = codec.decode(payload)
    except zlib.error as exc:
        raise ChecksumError(file, "data", block=block,
                            detail=f"decode failed: {exc}") from exc
    if len(raw) != raw_len:
        raise ChecksumError(
            file, "data", block=block,
            detail=f"decoded {len(raw)} bytes, expected {raw_len}")
    return raw
