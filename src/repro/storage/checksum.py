"""CRC32C (Castagnoli) checksums for the block-based SSTable format.

LevelDB and RocksDB both protect every SSTable block with CRC32C; the
container this repo runs in has no native ``crc32c`` wheel, so this
module provides a self-contained implementation with two paths:

* a classic byte-at-a-time table loop (always available), and
* a numpy-vectorised bulk path that exploits the linearity of CRCs over
  GF(2): the CRC state after feeding a message from state 0 is the XOR
  of one per-byte contribution, where the contribution of byte ``b`` at
  distance ``d`` from the end of the message is ``zshift_d(T0[b])``
  (``zshift_d`` = feeding ``d`` zero bytes).  Precomputed tables turn
  the whole message into a handful of fancy-indexed gathers plus an
  XOR reduction — roughly 20-40 MB/s versus ~9 MB/s for the scalar
  loop, which matters because every block write and first block read
  pays for a checksum.

The polynomial is the reflected Castagnoli polynomial 0x82F63B78 with
init/xorout 0xFFFFFFFF; the check value ``crc32c(b"123456789")`` is the
standard 0xE3069283.
"""

from __future__ import annotations

from typing import List, Optional

try:  # numpy ships with the repo's toolchain, but stay importable without.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on bare installs
    _np = None

_POLY = 0x82F63B78
_MASK = 0xFFFFFFFF

#: Below this size the scalar loop beats the vectorised path's setup.
_SCALAR_CUTOFF = 256
#: Bytes per vectorised pass; distances within a chunk stay < 2**16 so
#: the two-level (d % 256, d // 256) table decomposition applies.
_CHUNK = 65536


def _build_byte_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


#: ``T0[b]`` — CRC state after feeding byte ``b`` from state 0.
_T0 = _build_byte_table()

# Lazily built numpy tables (about 1.25 MiB total):
#   _U[r, b]     = zshift_r(T0[b])                    for r in [0, 256)
#   _V[q, k, t]  = zshift_{256*q}(t << (8*k))         for q in [0, 256)
_U: Optional["_np.ndarray"] = None
_V: Optional["_np.ndarray"] = None
# Flattened views plus precomputed index bases for a full chunk; 1-D
# fancy indexing is measurably faster than multi-axis gathers.
_UF: Optional["_np.ndarray"] = None
_VF: Optional[List["_np.ndarray"]] = None
_IDX_R: Optional["_np.ndarray"] = None
_IDX_Q: Optional["_np.ndarray"] = None


def _build_tables() -> None:
    global _U, _V, _UF, _VF, _IDX_R, _IDX_Q
    t0 = _np.array(_T0, dtype=_np.uint32)

    u = _np.empty((256, 256), dtype=_np.uint32)
    u[0] = t0
    for r in range(1, 256):
        prev = u[r - 1]
        u[r] = t0[prev & 0xFF] ^ (prev >> _np.uint32(8))
    _U = u

    v = _np.empty((256, 4, 256), dtype=_np.uint32)
    base = _np.arange(256, dtype=_np.uint32)
    for k in range(4):
        v[0, k] = base << _np.uint32(8 * k)
    # v[1] by applying the zero-byte update 256 times to v[0].
    for k in range(4):
        cur = v[0, k].copy()
        for _ in range(256):
            cur = t0[cur & 0xFF] ^ (cur >> _np.uint32(8))
        v[1, k] = cur
    # v[q] for q >= 2 via byte decomposition through v[1].
    z = v[1]
    for q in range(2, 256):
        prev = v[q - 1]
        for k in range(4):
            cur = prev[k]
            v[q, k] = (z[0][cur & 0xFF]
                       ^ z[1][(cur >> _np.uint32(8)) & 0xFF]
                       ^ z[2][(cur >> _np.uint32(16)) & 0xFF]
                       ^ z[3][cur >> _np.uint32(24)])
    _V = v
    _UF = _np.ascontiguousarray(u.reshape(-1))
    _VF = [_np.ascontiguousarray(v[:, k, :].reshape(-1)) for k in range(4)]
    dist = _np.arange(_CHUNK - 1, -1, -1, dtype=_np.intp)
    _IDX_R = (dist & 0xFF) << 8
    _IDX_Q = (dist >> 8) << 8


def _zshift(state: int, n: int) -> int:
    """Feed ``n`` zero bytes into ``state`` (scalar, table-assisted)."""
    while n > 0xFFFF:
        state = _zshift(state, 0xFFFF)
        n -= 0xFFFF
    r, q = n & 0xFF, n >> 8
    for _ in range(r):
        state = _T0[state & 0xFF] ^ (state >> 8)
    if q:
        v = _V[q]
        state = int(v[0][state & 0xFF]
                    ^ v[1][(state >> 8) & 0xFF]
                    ^ v[2][(state >> 16) & 0xFF]
                    ^ v[3][state >> 24])
    return state


def _crc_scalar(data: bytes, state: int) -> int:
    table = _T0
    for byte in data:
        state = table[(state ^ byte) & 0xFF] ^ (state >> 8)
    return state


def _raw_state_vec(chunk: "_np.ndarray") -> int:
    """CRC state after feeding ``chunk`` from state 0 (len <= _CHUNK)."""
    n = len(chunk)
    if n == _CHUNK:
        idx_r, idx_q = _IDX_R, _IDX_Q
    else:
        dist = _np.arange(n - 1, -1, -1, dtype=_np.intp)
        idx_r = (dist & 0xFF) << 8
        idx_q = (dist >> 8) << 8
    c = _UF[idx_r + chunk]
    v0, v1, v2, v3 = _VF
    contrib = (v0[idx_q + (c & _np.uint32(0xFF))]
               ^ v1[idx_q + ((c >> _np.uint32(8)) & _np.uint32(0xFF))]
               ^ v2[idx_q + ((c >> _np.uint32(16)) & _np.uint32(0xFF))]
               ^ v3[idx_q + (c >> _np.uint32(24))])
    return int(_np.bitwise_xor.reduce(contrib))


def crc32c(data: bytes, value: int = 0) -> int:
    """CRC32C of ``data``; ``value`` chains a previous crc32c result."""
    state = (value ^ _MASK) & _MASK
    if _np is None or len(data) < _SCALAR_CUTOFF:
        return _crc_scalar(data, state) ^ _MASK
    if _U is None:
        _build_tables()
    arr = _np.frombuffer(data, dtype=_np.uint8)
    for start in range(0, len(arr), _CHUNK):
        chunk = arr[start:start + _CHUNK]
        state = _zshift(state, len(chunk)) ^ _raw_state_vec(chunk)
    return state ^ _MASK


def backend() -> str:
    """Which implementation bulk checksums use (for diagnostics)."""
    return "numpy" if _np is not None else "scalar"
