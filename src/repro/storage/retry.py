"""Bounded retries with deterministic backoff for transient read faults.

Real storage stacks retry flaky reads a small, bounded number of times
before surfacing the error.  :class:`RetryPolicy` reproduces that shape
deterministically: each retry charges an exponentially growing backoff
delay to the simulated cost model (so retried workloads *measure*
slower, exactly like a production histogram would show), and the policy
gives up after ``max_attempts`` total attempts.

Only :class:`~repro.errors.TransientIOError` is retried.  Checksum
failures are *not* transient — re-reading a rotted block returns the
same rotted bytes — so they bypass the policy entirely and flow into
the quarantine path (see ``docs/FAULTS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.errors import InvalidOptionError, TransientIOError
from repro.storage.stats import (
    RETRY_ATTEMPTS,
    RETRY_EXHAUSTED,
    RETRY_SUCCESSES,
    Stage,
    Stats,
)

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts plus deterministic exponential backoff.

    ``max_attempts`` counts the first try: the default of 3 means one
    read plus up to two retries.  The *n*-th retry sleeps (charges)
    ``backoff_us * multiplier**(n-1)`` simulated microseconds.
    """

    max_attempts: int = 3
    backoff_us: float = 50.0
    multiplier: float = 2.0

    def validate(self) -> None:
        """Raise :class:`InvalidOptionError` on nonsensical settings."""
        if self.max_attempts < 1:
            raise InvalidOptionError(
                f"retry.max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_us < 0:
            raise InvalidOptionError(
                f"retry.backoff_us must be >= 0, got {self.backoff_us}")
        if self.multiplier < 1.0:
            raise InvalidOptionError(
                f"retry.multiplier must be >= 1, got {self.multiplier}")

    def call(self, fn: Callable[[], T], stats: Optional[Stats] = None,
             stage: Stage = Stage.IO) -> T:
        """Run ``fn``, retrying :class:`TransientIOError` up to the cap.

        Backoff delays are charged to ``stats`` under ``stage`` so the
        latency cost of flaky hardware shows up in the simulated
        breakdown.  The final failure re-raises the last transient
        error unchanged.
        """
        delay = self.backoff_us
        for attempt in range(1, self.max_attempts + 1):
            try:
                result = fn()
            except TransientIOError:
                if stats is not None:
                    stats.add(RETRY_ATTEMPTS)
                if attempt == self.max_attempts:
                    if stats is not None:
                        stats.add(RETRY_EXHAUSTED)
                    raise
                if stats is not None and delay > 0:
                    stats.charge(stage, delay)
                delay *= self.multiplier
            else:
                if attempt > 1 and stats is not None:
                    stats.add(RETRY_SUCCESSES)
                return result
        raise AssertionError("unreachable")  # pragma: no cover


DEFAULT_RETRY_POLICY = RetryPolicy()
