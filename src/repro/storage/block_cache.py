"""LRU block cache: a memory tier in front of ``BlockDevice.pread``.

LevelDB and RocksDB put a block cache between the table reader and the
disk; the paper's testbed omits one so that every segment fetch pays
for real I/O, which is the right choice for isolating index quality but
the wrong one for a serving layer, where skewed (Zipfian) traffic
re-reads a small hot set of blocks.  This module adds that tier:

* :class:`LRUBlockCache` — a bounded map of ``(file, block_index)`` to
  block payloads with least-recently-used eviction;
* :class:`CachedBlockDevice` — a :class:`~repro.storage.block_device.BlockDevice`
  decorator that serves ``pread`` block-by-block from the cache,
  fetching only the missing runs from the wrapped device.

Accounting follows the repo's split between counters and time: the
wrapped device keeps recording raw I/O counters for the blocks it
actually fetches (so ``io.blocks_read`` now means *device* reads, with
hits visible under ``cache.block_hits``), while simulated time stays a
call-site concern — cache-aware readers use
:meth:`CachedBlockDevice.pread_cached` to learn what fraction of a read
was served from memory and charge
:attr:`~repro.storage.cost_model.CostModel.cache_block_us` for it
instead of seek + transfer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import StorageError
from repro.storage.block_device import BlockDevice
from repro.storage.stats import (
    CACHE_EVICTIONS,
    CACHE_HITS,
    CACHE_MISSES,
    Stats,
)


class LRUBlockCache:
    """A bounded ``(file, block_index) -> bytes`` map with LRU eviction.

    Capacity is expressed in bytes and converted to whole blocks; a
    capacity below one block disables admission entirely (every ``put``
    is dropped), which keeps a misconfigured cache harmless.
    """

    def __init__(self, capacity_bytes: int, block_size: int) -> None:
        if capacity_bytes < 0:
            raise StorageError(
                f"cache capacity must be >= 0, got {capacity_bytes}")
        if block_size <= 0:
            raise StorageError(
                f"cache block size must be positive, got {block_size}")
        self.capacity_bytes = capacity_bytes
        self.block_size = block_size
        self.capacity_blocks = capacity_bytes // block_size
        self._blocks: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        self._by_file: Dict[str, Set[int]] = {}
        self._blocked: Set[Tuple[str, int]] = set()

    # -- core map ------------------------------------------------------

    def get(self, name: str, index: int) -> Optional[bytes]:
        """The cached payload of block ``index`` of ``name``, or None.

        A hit moves the block to the most-recently-used position.
        """
        block = self._blocks.get((name, index))
        if block is not None:
            self._blocks.move_to_end((name, index))
        return block

    def put(self, name: str, index: int, payload: bytes) -> int:
        """Admit one block; returns how many blocks were evicted."""
        if self.capacity_blocks <= 0:
            return 0
        key = (name, index)
        if key in self._blocked:
            return 0  # quarantined blocks are never re-admitted
        self._blocks[key] = payload
        self._blocks.move_to_end(key)
        self._by_file.setdefault(name, set()).add(index)
        evicted = 0
        while len(self._blocks) > self.capacity_blocks:
            (old_name, old_index), _ = self._blocks.popitem(last=False)
            self._discard_index(old_name, old_index)
            evicted += 1
        return evicted

    def _discard_index(self, name: str, index: int) -> None:
        indexes = self._by_file.get(name)
        if indexes is not None:
            indexes.discard(index)
            if not indexes:
                del self._by_file[name]

    # -- invalidation --------------------------------------------------

    def invalidate_block(self, name: str, index: int) -> None:
        """Drop one block (the mutable tail of an appended file)."""
        if self._blocks.pop((name, index), None) is not None:
            self._discard_index(name, index)

    def invalidate_file(self, name: str) -> int:
        """Drop every cached block of ``name``; returns blocks dropped.

        Also lifts any quarantine on the name: invalidation happens when
        the file identity changes (create/delete/rename), and a new file
        under an old name must not inherit its predecessor's poison
        list.
        """
        self._blocked = {key for key in self._blocked if key[0] != name}
        indexes = self._by_file.pop(name, None)
        if not indexes:
            return 0
        for index in indexes:
            self._blocks.pop((name, index), None)
        return len(indexes)

    def quarantine(self, name: str, index: int) -> None:
        """Evict one block and refuse to ever re-admit it.

        Called when a read of this block failed its checksum: the copy
        in cache (and any future copy read from the device) is poison.
        """
        self.invalidate_block(name, index)
        self._blocked.add((name, index))

    def is_quarantined(self, name: str, index: int) -> bool:
        """True when ``(name, index)`` is barred from admission."""
        return (name, index) in self._blocked

    def clear(self) -> None:
        """Drop everything."""
        self._blocks.clear()
        self._by_file.clear()
        self._blocked.clear()

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._blocks)

    def used_bytes(self) -> int:
        """Bytes of cached payload currently held."""
        return sum(len(block) for block in self._blocks.values())


class DataBlockCache:
    """The second cache tier: *decompressed* SSTable data blocks.

    Where :class:`LRUBlockCache` holds raw device blocks (post-codec
    bytes at device-block granularity), this tier holds whole decoded
    data blocks keyed by ``(file, block_no)`` — a hit skips simulated
    I/O, checksum verification *and* decompression.  Capacity is in
    bytes because decompressed blocks vary in size (the tail block of a
    table is short).

    Tables call :meth:`get`/:meth:`put` directly and account hits and
    misses themselves; eviction counts are returned from :meth:`put`
    like :class:`LRUBlockCache` does, so all ``cache.data_*`` counters
    land in one :class:`~repro.storage.stats.Stats` registry.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 0:
            raise StorageError(
                f"data cache capacity must be >= 0, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._blocks: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        self._by_file: Dict[str, Set[int]] = {}
        self._used_bytes = 0
        self._blocked: Set[Tuple[str, int]] = set()

    def get(self, name: str, block_no: int) -> Optional[bytes]:
        """The decoded payload of ``block_no`` of ``name``, or None."""
        payload = self._blocks.get((name, block_no))
        if payload is not None:
            self._blocks.move_to_end((name, block_no))
        return payload

    def put(self, name: str, block_no: int, payload: bytes) -> int:
        """Admit one decoded block; returns how many blocks were evicted."""
        if len(payload) > self.capacity_bytes:
            return 0  # an oversized block would evict the whole cache
        key = (name, block_no)
        if key in self._blocked:
            return 0  # quarantined blocks are never re-admitted
        old = self._blocks.get(key)
        if old is not None:
            self._used_bytes -= len(old)
        self._blocks[key] = payload
        self._blocks.move_to_end(key)
        self._used_bytes += len(payload)
        self._by_file.setdefault(name, set()).add(block_no)
        evicted = 0
        while self._used_bytes > self.capacity_bytes:
            (old_name, old_no), old_payload = self._blocks.popitem(last=False)
            self._used_bytes -= len(old_payload)
            indexes = self._by_file.get(old_name)
            if indexes is not None:
                indexes.discard(old_no)
                if not indexes:
                    del self._by_file[old_name]
            evicted += 1
        return evicted

    def invalidate_file(self, name: str) -> int:
        """Drop every cached block of ``name``; returns blocks dropped.

        Lifts any quarantine on the name (the file identity changed),
        mirroring :meth:`LRUBlockCache.invalidate_file`.
        """
        self._blocked = {key for key in self._blocked if key[0] != name}
        indexes = self._by_file.pop(name, None)
        if not indexes:
            return 0
        for block_no in indexes:
            payload = self._blocks.pop((name, block_no), None)
            if payload is not None:
                self._used_bytes -= len(payload)
        return len(indexes)

    def quarantine(self, name: str, block_no: int) -> None:
        """Evict one decoded block and refuse to ever re-admit it."""
        payload = self._blocks.pop((name, block_no), None)
        if payload is not None:
            self._used_bytes -= len(payload)
            indexes = self._by_file.get(name)
            if indexes is not None:
                indexes.discard(block_no)
                if not indexes:
                    del self._by_file[name]
        self._blocked.add((name, block_no))

    def is_quarantined(self, name: str, block_no: int) -> bool:
        """True when ``(name, block_no)`` is barred from admission."""
        return (name, block_no) in self._blocked

    def clear(self) -> None:
        """Drop everything."""
        self._blocks.clear()
        self._by_file.clear()
        self._used_bytes = 0
        self._blocked.clear()

    def __len__(self) -> int:
        return len(self._blocks)

    def used_bytes(self) -> int:
        """Bytes of decoded payload currently held."""
        return self._used_bytes


class CachedBlockDevice(BlockDevice):
    """A block device decorator that serves reads through an LRU cache.

    Wraps any :class:`~repro.storage.block_device.BlockDevice`; reads
    are assembled block-by-block, fetching only cache misses (in
    contiguous runs) from the wrapped device.  Writes pass through and
    invalidate affected blocks — appends drop only the previously
    partial tail block, since earlier blocks of an append-only file are
    immutable.

    The shared :class:`~repro.storage.stats.Stats` registry is
    propagated to the wrapped device, so raw I/O counters keep flowing
    to one place and ``cache.*`` counters land beside them.
    """

    def __init__(self, inner: BlockDevice, capacity_bytes: int,
                 stats: Optional[Stats] = None) -> None:
        self.inner = inner
        self.cache = LRUBlockCache(capacity_bytes, inner.block_size)
        super().__init__(block_size=inner.block_size,
                         stats=stats if stats is not None else inner.stats)

    # Propagate stats reassignment (LSMTree sets ``device.stats``) to
    # the wrapped device so both layers account into the same registry.
    @property
    def stats(self) -> Stats:
        return self._stats

    @stats.setter
    def stats(self, value: Stats) -> None:
        self._stats = value
        self.inner.stats = value

    # -- reads ---------------------------------------------------------

    def pread(self, name: str, offset: int, length: int) -> bytes:
        data, _ = self.pread_cached(name, offset, length)
        return data

    def pread_uncached(self, name: str, offset: int, length: int) -> bytes:
        """Read straight from the wrapped device, admitting nothing."""
        return self.inner.pread(name, offset, length)

    def pread_cached(self, name: str, offset: int,
                     length: int) -> Tuple[bytes, float]:
        """Cache-aware read: ``(data, fraction of blocks served hot)``."""
        if offset < 0 or length < 0:
            raise StorageError(
                f"invalid pread range offset={offset} length={length}")
        size = self.inner.size(name)  # raises for missing files
        avail = min(length, max(0, size - offset))
        if avail <= 0:
            return b"", 0.0
        block_size = self.block_size
        first = offset // block_size
        last = (offset + avail - 1) // block_size
        blocks: List[Optional[bytes]] = []
        missing: List[int] = []
        for index in range(first, last + 1):
            block = self.cache.get(name, index)
            blocks.append(block)
            if block is None:
                missing.append(index)
        hits = len(blocks) - len(missing)
        if hits:
            self.stats.add(CACHE_HITS, hits)
        if missing:
            self.stats.add(CACHE_MISSES, len(missing))
            self._fetch_missing(name, size, first, blocks, missing)
        data = b"".join(blocks)[offset - first * block_size:]
        return data[:avail], hits / len(blocks)

    def _fetch_missing(self, name: str, size: int, first: int,
                       blocks: List[Optional[bytes]],
                       missing: List[int]) -> None:
        """Fetch contiguous miss runs from the wrapped device."""
        block_size = self.block_size
        run_start = 0
        while run_start < len(missing):
            run_end = run_start
            while (run_end + 1 < len(missing)
                   and missing[run_end + 1] == missing[run_end] + 1):
                run_end += 1
            lo = missing[run_start]
            hi = missing[run_end]
            payload = self.inner.pread(name, lo * block_size,
                                       (hi - lo + 1) * block_size)
            for index in range(lo, hi + 1):
                chunk = payload[(index - lo) * block_size:
                                (index - lo + 1) * block_size]
                blocks[index - first] = chunk
                # Only full blocks (or the file's final block) are
                # admissible; both are stable until an append arrives,
                # and appends invalidate the tail block below.
                evicted = self.cache.put(name, index, chunk)
                if evicted:
                    self.stats.add(CACHE_EVICTIONS, evicted)
            run_start = run_end + 1

    def quarantine(self, name: str, index: int) -> None:
        """Evict one device block and bar it from re-admission.

        Used by the table reader when the data decoded from this span
        failed its checksum: the cached raw bytes are poison, and so is
        anything the device would return for them again.
        """
        self.cache.quarantine(name, index)

    # -- writes and namespace ops (pass-through + invalidation) --------

    def create(self, name: str) -> None:
        self.cache.invalidate_file(name)
        self.inner.create(name)

    def append(self, name: str, data: bytes) -> None:
        old_size = self.inner.size(name) if self.inner.exists(name) else 0
        if old_size % self.block_size:
            # The tail block was partial and is about to change.
            self.cache.invalidate_block(name, old_size // self.block_size)
        self.inner.append(name, data)

    def delete(self, name: str) -> None:
        self.cache.invalidate_file(name)
        self.inner.delete(name)

    def rename(self, src: str, dst: str) -> None:
        self.cache.invalidate_file(src)
        self.cache.invalidate_file(dst)
        self.inner.rename(src, dst)

    def size(self, name: str) -> int:
        return self.inner.size(name)

    def exists(self, name: str) -> bool:
        return self.inner.exists(name)

    def list_files(self) -> List[str]:
        return self.inner.list_files()
