"""CRC32 record framing shared by every durable log on the device.

The WAL, the MANIFEST version log and the ``mdl-*`` model sidecars all
persist byte payloads with the same armor::

    frame := crc32(u32 LE) | payload_len(u32 LE) | payload

and all recover with the same rule: a frame whose length runs past the
data or whose CRC fails ends the parse — the *torn tail* of a crashed
append is dropped, never half-applied.  Centralising the pack/verify
logic here keeps those semantics identical across the three logs.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional, Tuple

FRAME_HEADER = struct.Struct("<II")  # crc32, payload length


def frame(payload: bytes) -> bytes:
    """Wrap one payload in a CRC frame (the unit of atomic append)."""
    return FRAME_HEADER.pack(zlib.crc32(payload), len(payload)) + payload


def parse_frames(data: bytes) -> Tuple[List[bytes], bool]:
    """Every intact payload in ``data``, plus whether a tail was torn.

    Parsing stops silently at the first short frame, CRC mismatch or
    trailing fragment shorter than a header; ``torn`` reports whether
    any such bytes were left behind (callers that can repair — the
    manifest — truncate them; callers that cannot — the WAL — ignore
    them, as the next reset rewrites the file anyway).
    """
    payloads: List[bytes] = []
    offset = 0
    while offset + FRAME_HEADER.size <= len(data):
        crc, length = FRAME_HEADER.unpack_from(data, offset)
        start = offset + FRAME_HEADER.size
        end = start + length
        if end > len(data):
            return payloads, True  # torn tail
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return payloads, True  # corrupt tail
        payloads.append(bytes(payload))
        offset = end
    return payloads, offset < len(data)


def parse_single_frame(data: bytes) -> Optional[bytes]:
    """The payload of a file holding exactly one frame; None otherwise."""
    payloads, torn = parse_frames(data)
    if torn or len(payloads) != 1:
        return None
    return payloads[0]
