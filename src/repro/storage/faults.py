"""Deterministic storage-fault injection.

:class:`FaultyBlockDevice` decorates any
:class:`~repro.storage.block_device.BlockDevice` with the failure modes
production disks actually exhibit, driven by a seeded
:class:`FaultPlan` so every run — and every re-run — sees exactly the
same faults:

* **Transient read errors** — a read raises
  :class:`~repro.errors.TransientIOError` a bounded number of times,
  then succeeds; the cure for flaky buses, and the target of
  :class:`~repro.storage.retry.RetryPolicy`.
* **Bit rot** — chosen device blocks return flipped bits forever.
  Which blocks rot is a pure function of ``(seed, file, block)``, so
  rot is stable across reads, retries and reopens: retrying cannot fix
  it, which is exactly what pushes the engine down the quarantine path.
* **Torn appends** — an append writes a prefix and fails, modelling a
  crash mid-``write()``.
* **Disk full** — appends past a byte budget write what fits and raise
  :class:`~repro.errors.DiskFullError`.
* **Power cut** — one append past a byte budget persists only its
  synced prefix and kills the device; everything afterwards raises
  :class:`~repro.errors.PowerCutError` until :meth:`revive`, modelling
  a machine restart.

Every injected fault is counted in :class:`~repro.storage.stats.Stats`
under the ``fault.*`` series.  Stack the decorator *under* the cache
(``CachedBlockDevice(FaultyBlockDevice(MemoryBlockDevice()))``) so
faults strike on cache misses, the way real media errors do.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import (
    DiskFullError,
    PowerCutError,
    StorageError,
    TransientIOError,
)
from repro.storage.block_device import BlockDevice
from repro.storage.stats import (
    FAULT_BIT_ROT_BLOCKS,
    FAULT_DISK_FULL,
    FAULT_POWER_CUTS,
    FAULT_TORN_APPENDS,
    FAULT_TRANSIENT_READS,
    FAULTS_INJECTED,
    Stage,
    Stats,
)

_RATE_BITS = 24
_RATE_SPACE = float(1 << _RATE_BITS)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of storage faults.

    All rates are probabilities in ``[0, 1]``.  Two devices built from
    equal plans inject identical faults given identical operation
    sequences; bit rot is even stronger — a pure function of
    ``(seed, file name, block index)`` — so it does not depend on the
    order of reads at all.
    """

    seed: int = 0
    #: Probability that a read hits a transient (retryable) error.
    transient_read_rate: float = 0.0
    #: Consecutive failures delivered before the same read succeeds.
    transient_fail_count: int = 1
    #: Simulated microseconds a transient failure *costs* before it is
    #: reported — the detection timeout of a flaky read (a real SCSI
    #: timeout is tens of milliseconds, dwarfing a healthy read).
    #: Charged to the IO stage, so a failed attempt occupies simulated
    #: capacity; this is what makes unbounded retries expensive at
    #: saturation.  0 keeps PR 6's instant-failure behaviour.
    transient_timeout_us: float = 0.0
    #: Fraction of device blocks (of matching files) that rot.
    bit_rot_rate: float = 0.0
    #: Only files with these prefixes are subject to rate-based rot.
    rot_file_prefixes: Tuple[str, ...] = ("sst-",)
    #: Probability that an append tears (writes a prefix and fails).
    torn_append_rate: float = 0.0
    #: Appends past this cumulative byte budget raise DiskFullError.
    disk_full_after_bytes: Optional[int] = None
    #: The append crossing this budget powers the machine off.
    power_cut_after_bytes: Optional[int] = None


class FaultyBlockDevice(BlockDevice):
    """A block-device decorator that injects the plan's faults.

    Reads and writes otherwise pass straight through to ``inner``,
    which keeps all raw I/O accounting; this layer only adds ``fault.*``
    counters for what it injects.
    """

    def __init__(self, inner: BlockDevice, plan: FaultPlan,
                 stats: Optional[Stats] = None) -> None:
        self.inner = inner
        self.plan = plan
        self._rng = random.Random(plan.seed)
        #: (name, offset, length) -> remaining transient failures; 0
        #: means "the next identical read is guaranteed to succeed".
        self._transient: Dict[Tuple[str, int, int], int] = {}
        #: Blocks rotted explicitly via :meth:`inject_rot`.
        self._forced_rot: Set[Tuple[str, int]] = set()
        #: Rotted blocks whose corruption was already served (counted).
        self._rot_served: Set[Tuple[str, int]] = set()
        self._appended = 0
        self._dead = False
        self._power_cut_fired = False
        super().__init__(block_size=inner.block_size,
                         stats=stats if stats is not None else inner.stats)

    # Propagate stats reassignment (LSMTree sets ``device.stats``) to
    # the wrapped device so both layers account into the same registry.
    @property
    def stats(self) -> Stats:
        return self._stats

    @stats.setter
    def stats(self, value: Stats) -> None:
        self._stats = value
        self.inner.stats = value

    # -- fault machinery -----------------------------------------------

    def _check_alive(self) -> None:
        if self._dead:
            raise PowerCutError(
                "simulated machine is powered off; call revive() and "
                "reopen the database")

    def cut_power(self) -> None:
        """Kill the device immediately (no byte budget required).

        Models an operator-scheduled crash: everything already appended
        survives in :attr:`inner`; every subsequent operation raises
        :class:`~repro.errors.PowerCutError` until :meth:`revive`.
        A no-op when the device is already dead, so crash schedules can
        overlap a budget-driven cut without double counting.
        """
        if self._dead:
            return
        self._dead = True
        self._count_fault(FAULT_POWER_CUTS)

    def revive(self) -> None:
        """Power the machine back on after a simulated cut.

        The consumed power-cut budget stays consumed, so the device does
        not immediately crash again; callers then *reopen* the database
        from :attr:`inner`'s surviving bytes.
        """
        self._dead = False

    @property
    def powered_off(self) -> bool:
        """True between a power cut and :meth:`revive`."""
        return self._dead

    def _block_hash(self, name: str, index: int) -> int:
        token = f"{self.plan.seed}:{name}:{index}".encode()
        digest = hashlib.blake2b(token, digest_size=8).digest()
        return int.from_bytes(digest, "little")

    def is_rotted(self, name: str, index: int) -> bool:
        """Whether device block ``index`` of ``name`` is rotted."""
        if (name, index) in self._forced_rot:
            return True
        plan = self.plan
        if plan.bit_rot_rate <= 0:
            return False
        if not name.startswith(plan.rot_file_prefixes):
            return False
        draw = (self._block_hash(name, index) >> 40) & ((1 << _RATE_BITS) - 1)
        return draw / _RATE_SPACE < plan.bit_rot_rate

    def inject_rot(self, name: str, index: int) -> None:
        """Force bit rot into one specific device block."""
        self._forced_rot.add((name, index))

    def rotted_blocks(self, name: str) -> List[int]:
        """Device-block indexes of ``name`` currently planned to rot."""
        nblocks = (self.inner.size(name) + self.block_size - 1) \
            // self.block_size
        return [i for i in range(nblocks) if self.is_rotted(name, i)]

    def _maybe_transient(self, name: str, offset: int, length: int) -> None:
        plan = self.plan
        key = (name, offset, length)
        state = self._transient.get(key)
        if state is not None:
            if state == 0:
                # The guaranteed clean serve after the failure burst.
                del self._transient[key]
                return
            self._transient[key] = state - 1
            self._fail_transient(name, offset, length)
        if plan.transient_read_rate <= 0:
            return
        if self._rng.random() < plan.transient_read_rate:
            self._transient[key] = plan.transient_fail_count - 1
            self._fail_transient(name, offset, length)

    def _fail_transient(self, name: str, offset: int, length: int) -> None:
        if self.plan.transient_timeout_us > 0:
            # Failure detection is not free: the caller waited out the
            # timeout before learning anything.
            self.stats.charge(Stage.IO, self.plan.transient_timeout_us)
        self._count_fault(FAULT_TRANSIENT_READS)
        raise TransientIOError(
            f"transient read error on {name!r} @{offset}+{length}")

    def _apply_rot(self, name: str, offset: int, data: bytes) -> bytes:
        if not data:
            return data
        plan = self.plan
        if plan.bit_rot_rate <= 0 and not self._forced_rot:
            return data
        block_size = self.block_size
        first = offset // block_size
        last = (offset + len(data) - 1) // block_size
        out: Optional[bytearray] = None
        for index in range(first, last + 1):
            if not self.is_rotted(name, index):
                continue
            digest = self._block_hash(name, index)
            pos = index * block_size + ((digest >> 8) % block_size)
            if not offset <= pos < offset + len(data):
                continue  # the rotted byte lies outside this read
            if out is None:
                out = bytearray(data)
            out[pos - offset] ^= 1 << (digest & 7)
            if (name, index) not in self._rot_served:
                self._rot_served.add((name, index))
                self._count_fault(FAULT_BIT_ROT_BLOCKS)
        return bytes(out) if out is not None else data

    def _count_fault(self, counter: str) -> None:
        self.stats.add(FAULTS_INJECTED)
        self.stats.add(counter)

    def _write_prefix(self, name: str, data: bytes, fitting: int) -> None:
        if fitting > 0:
            self.inner.append(name, data[:fitting])
            self._appended += fitting

    # -- reads ---------------------------------------------------------

    def pread(self, name: str, offset: int, length: int) -> bytes:
        self._check_alive()
        self._maybe_transient(name, offset, length)
        data = self.inner.pread(name, offset, length)
        return self._apply_rot(name, offset, data)

    def pread_uncached(self, name: str, offset: int, length: int) -> bytes:
        self._check_alive()
        self._maybe_transient(name, offset, length)
        data = self.inner.pread_uncached(name, offset, length)
        return self._apply_rot(name, offset, data)

    # -- writes --------------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        self._check_alive()
        plan = self.plan
        if (plan.power_cut_after_bytes is not None
                and not self._power_cut_fired
                and self._appended + len(data) > plan.power_cut_after_bytes):
            self._write_prefix(name, data,
                              plan.power_cut_after_bytes - self._appended)
            self._power_cut_fired = True
            self._dead = True
            self._count_fault(FAULT_POWER_CUTS)
            raise PowerCutError(
                f"power cut during append to {name!r}; unsynced suffix lost")
        if (plan.disk_full_after_bytes is not None
                and self._appended + len(data) > plan.disk_full_after_bytes):
            self._write_prefix(
                name, data,
                max(0, plan.disk_full_after_bytes - self._appended))
            self._count_fault(FAULT_DISK_FULL)
            raise DiskFullError(
                f"device full appending {len(data)} bytes to {name!r}")
        if (plan.torn_append_rate > 0
                and self._rng.random() < plan.torn_append_rate):
            cut = self._rng.randrange(len(data)) if data else 0
            self._write_prefix(name, data, cut)
            self._count_fault(FAULT_TORN_APPENDS)
            raise StorageError(
                f"torn append to {name!r}: wrote {cut}/{len(data)} bytes")
        self.inner.append(name, data)
        self._appended += len(data)

    # -- pass-through namespace operations -----------------------------

    def create(self, name: str) -> None:
        self._check_alive()
        self.inner.create(name)

    def size(self, name: str) -> int:
        self._check_alive()
        return self.inner.size(name)

    def delete(self, name: str) -> None:
        self._check_alive()
        self.inner.delete(name)

    def rename(self, src: str, dst: str) -> None:
        self._check_alive()
        self.inner.rename(src, dst)

    def exists(self, name: str) -> bool:
        self._check_alive()
        return self.inner.exists(name)

    def list_files(self) -> List[str]:
        self._check_alive()
        return self.inner.list_files()
