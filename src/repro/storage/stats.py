"""Counters and simulated-time accounting shared by the whole system.

The paper reports two kinds of numbers for every experiment: *latencies*
(broken down into table lookup, model prediction, disk I/O and in-segment
binary search — its Figure 7 and Table 1) and *resource counters* (blocks
read, bytes moved during compaction, index memory).  This module provides
the single registry both kinds flow through.

Real wall-clock time in Python would be dominated by interpreter overhead
and would not preserve the paper's C++ ratios, so latency here is
*simulated*: components charge microseconds computed by
:class:`repro.storage.cost_model.CostModel` into a :class:`Stats` object
under a :class:`Stage` label.  The result is deterministic, reproducible
and — because the constants are calibrated against the paper's own
Table 1 — shape-preserving.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Tuple


class Stage(str, enum.Enum):
    """Labels for the simulated-time breakdown.

    The first four stages are exactly the four rows of the paper's
    Table 1; the remaining stages cover writes, compaction and range
    scans so that Figure 9's compaction breakdown can be reported from
    the same registry.
    """

    #: Locating the SSTable that may hold the key (version walk + bloom).
    TABLE_LOOKUP = "table_lookup"
    #: Inner-index access plus model evaluation ("Prediction" in Table 1).
    PREDICTION = "prediction"
    #: Block reads performed with the simulated ``pread``.
    IO = "io"
    #: Binary search inside the fetched segment.
    SEARCH = "search"
    #: Memtable / WAL work on the write path.
    WRITE_PATH = "write_path"
    #: Compaction: reading input key-value blocks.
    COMPACT_READ = "compact_read"
    #: Compaction: merging (decode, compare, re-encode).
    COMPACT_MERGE = "compact_merge"
    #: Compaction: writing output key-value blocks.
    COMPACT_WRITE = "compact_write"
    #: Compaction: training the learned index ("Learn" in Figure 9 B).
    COMPACT_TRAIN = "compact_train"
    #: Compaction: serialising and writing the model ("Write Model").
    COMPACT_WRITE_MODEL = "compact_write_model"
    #: Sequential scan work beyond the initial seek (range lookups).
    SCAN = "scan"
    #: Decompressing stored data blocks on the read path.
    DECOMPRESS = "decompress"
    #: Compaction/flush: compressing output data blocks.
    COMPACT_COMPRESS = "compact_compress"
    #: Cold-open work: manifest replay, table footer/index/bloom loads,
    #: model sidecar reads.  Deliberately outside READ_STAGES and
    #: COMPACTION_STAGES — restart cost is its own axis (the recovery
    #: experiment reads it directly).
    RECOVERY = "recovery"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Stages that make up a point/range lookup (used for per-op latency).
READ_STAGES: Tuple[Stage, ...] = (
    Stage.TABLE_LOOKUP,
    Stage.PREDICTION,
    Stage.IO,
    Stage.SEARCH,
    Stage.SCAN,
    Stage.DECOMPRESS,
)

#: Stages that make up a compaction (Figure 9's breakdown).
COMPACTION_STAGES: Tuple[Stage, ...] = (
    Stage.COMPACT_READ,
    Stage.COMPACT_MERGE,
    Stage.COMPACT_WRITE,
    Stage.COMPACT_TRAIN,
    Stage.COMPACT_WRITE_MODEL,
    Stage.COMPACT_COMPRESS,
)


@dataclass
class Stats:
    """A registry of named counters plus per-stage simulated time.

    ``counters`` hold raw event counts (blocks read, bloom probes,
    segments fetched, ...).  ``stage_us`` holds simulated microseconds
    per :class:`Stage`.  Both are plain dictionaries so snapshots and
    diffs are cheap; experiments snapshot around each operation to get
    per-operation latency.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    stage_us: Dict[Stage, float] = field(default_factory=dict)
    #: Optional :class:`repro.obs.trace.Tracer` observing this registry.
    #: Pure observation: the tracer receives every charge/add event but
    #: never writes back, so totals are byte-identical with or without
    #: it.  Excluded from equality so traced and untraced registries
    #: holding the same totals still compare equal.
    tracer: Optional[object] = field(default=None, repr=False, compare=False)

    # -- counters ------------------------------------------------------

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counters[name] = self.counters.get(name, 0.0) + amount
        if self.tracer is not None:
            self.tracer.on_count(name, amount)

    def get(self, name: str) -> float:
        """Return counter ``name`` (0.0 when never incremented)."""
        return self.counters.get(name, 0.0)

    # -- simulated time ------------------------------------------------

    def charge(self, stage: Stage, us: float) -> None:
        """Add ``us`` simulated microseconds to ``stage``."""
        if us < 0:
            raise ValueError(f"negative time charge: {us}")
        self.stage_us[stage] = self.stage_us.get(stage, 0.0) + us
        if self.tracer is not None:
            self.tracer.on_charge(stage, us)

    # -- tracing hooks -------------------------------------------------

    def attach_tracer(self, tracer) -> None:
        """Route every subsequent charge/add event into ``tracer``."""
        self.tracer = tracer

    def detach_tracer(self) -> None:
        """Stop observing (totals are untouched either way)."""
        self.tracer = None

    def begin_op(self, op, detail: str = ""):
        """Open a root/nested span for ``op``; None when untraced."""
        if self.tracer is None:
            return None
        return self.tracer.begin(op, detail)

    def end_op(self, span) -> None:
        """Close a span from :meth:`begin_op` (no-op on None)."""
        if span is not None:
            self.tracer.end(span)

    def stage_time(self, stage: Stage) -> float:
        """Simulated microseconds accumulated under ``stage``."""
        return self.stage_us.get(stage, 0.0)

    def total_time(self) -> float:
        """Simulated microseconds across all stages."""
        return sum(self.stage_us.values())

    def read_time(self) -> float:
        """Simulated microseconds across the read-path stages."""
        return sum(self.stage_us.get(stage, 0.0) for stage in READ_STAGES)

    def compaction_time(self) -> float:
        """Simulated microseconds across the compaction stages."""
        return sum(self.stage_us.get(stage, 0.0) for stage in COMPACTION_STAGES)

    def cache_hit_rate(self) -> float:
        """Block-cache hit fraction (0.0 when no cached reads happened)."""
        hits = self.counters.get(CACHE_HITS, 0.0)
        misses = self.counters.get(CACHE_MISSES, 0.0)
        total = hits + misses
        return hits / total if total else 0.0

    def data_cache_hit_rate(self) -> float:
        """Decompressed-block cache hit fraction (0.0 when unused)."""
        hits = self.counters.get(DATA_CACHE_HITS, 0.0)
        misses = self.counters.get(DATA_CACHE_MISSES, 0.0)
        total = hits + misses
        return hits / total if total else 0.0

    def compression_ratio(self) -> float:
        """Raw-over-stored ratio of data blocks written (1.0 when none)."""
        raw = self.counters.get(COMPRESS_BYTES_RAW, 0.0)
        stored = self.counters.get(COMPRESS_BYTES_STORED, 0.0)
        return raw / stored if stored else 1.0

    # -- snapshots -----------------------------------------------------

    def snapshot(self) -> "StatsSnapshot":
        """Capture the current totals for later :meth:`StatsSnapshot.delta`."""
        return StatsSnapshot(dict(self.counters), dict(self.stage_us))

    def merge(self, other: "Stats") -> None:
        """Fold ``other``'s totals into this registry."""
        for name, amount in other.counters.items():
            self.add(name, amount)
        for stage, us in other.stage_us.items():
            self.charge(stage, us)

    def reset(self) -> None:
        """Zero every counter and stage time."""
        self.counters.clear()
        self.stage_us.clear()

    # -- reporting -----------------------------------------------------

    def breakdown(self) -> Mapping[str, float]:
        """Return ``{stage name: simulated us}`` for human-readable reports."""
        return {stage.value: us for stage, us in sorted(
            self.stage_us.items(), key=lambda item: item[0].value)}

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self.counters.items()))


@dataclass(frozen=True)
class StatsSnapshot:
    """An immutable capture of a :class:`Stats` registry.

    ``delta`` between two snapshots (or a snapshot and the live registry)
    yields the counters and time spent inside a window — this is how the
    harness attributes cost to individual operations.
    """

    counters: Mapping[str, float]
    stage_us: Mapping[Stage, float]

    def delta(self, later: "Stats | StatsSnapshot") -> "StatsDelta":
        """Return the change from this snapshot to ``later``."""
        counters = {
            name: amount - self.counters.get(name, 0.0)
            for name, amount in later.counters.items()
            if amount != self.counters.get(name, 0.0)
        }
        stage_us = {
            stage: us - self.stage_us.get(stage, 0.0)
            for stage, us in later.stage_us.items()
            if us != self.stage_us.get(stage, 0.0)
        }
        return StatsDelta(counters, stage_us)


@dataclass(frozen=True)
class StatsDelta:
    """Counters and per-stage time accumulated inside a window."""

    counters: Mapping[str, float]
    stage_us: Mapping[Stage, float]

    def stage_time(self, stage: Stage) -> float:
        """Simulated microseconds spent in ``stage`` inside the window."""
        return self.stage_us.get(stage, 0.0)

    def total_time(self) -> float:
        """Simulated microseconds across all stages inside the window."""
        return sum(self.stage_us.values())

    def read_time(self) -> float:
        """Simulated microseconds across the read-path stages."""
        return sum(self.stage_us.get(stage, 0.0) for stage in READ_STAGES)

    def counter(self, name: str) -> float:
        """Counter change inside the window (0.0 when untouched)."""
        return self.counters.get(name, 0.0)


# Canonical counter names, collected here so call sites and tests agree.
BLOCKS_READ = "io.blocks_read"
BLOCKS_WRITTEN = "io.blocks_written"
BYTES_READ = "io.bytes_read"
BYTES_WRITTEN = "io.bytes_written"
READ_CALLS = "io.read_calls"
WRITE_CALLS = "io.write_calls"
SEEKS = "io.seeks"
SEGMENTS_FETCHED = "lookup.segments_fetched"
BLOOM_PROBES = "lookup.bloom_probes"
BLOOM_NEGATIVES = "lookup.bloom_negatives"
BLOOM_FALSE_POSITIVES = "lookup.bloom_false_positives"
POINT_LOOKUPS = "op.point_lookups"
RANGE_LOOKUPS = "op.range_lookups"
MULTIGET_BATCHES = "multiget.batches"
MULTIGET_KEYS = "multiget.keys"
MULTIGET_COALESCED = "multiget.segments_coalesced"
MULTIGET_SEEKS_SAVED = "multiget.seeks_saved"
MULTIGET_READ_YOUR_WRITES = "multiget.read_your_writes"
UPDATES = "op.updates"
BATCH_WRITES = "op.batch_writes"
FLUSHES = "op.flushes"
COMPACTIONS = "op.compactions"
WAL_GROUP_COMMITS = "wal.group_commits"
WAL_RECORDS_APPENDED = "wal.records_appended"
CACHE_HITS = "cache.block_hits"
CACHE_MISSES = "cache.block_misses"
CACHE_EVICTIONS = "cache.block_evictions"
DATA_CACHE_HITS = "cache.data_hits"
DATA_CACHE_MISSES = "cache.data_misses"
DATA_CACHE_EVICTIONS = "cache.data_evictions"
COMPRESS_BYTES_RAW = "compress.bytes_raw"
COMPRESS_BYTES_STORED = "compress.bytes_stored"
DECOMPRESS_BYTES = "compress.bytes_decompressed"
CHECKSUM_FAILURES = "block.checksum_failures"
BLOCKS_VERIFIED = "block.checksums_verified"
COMPACT_BYTES_IN = "compaction.bytes_in"
COMPACT_BYTES_OUT = "compaction.bytes_out"
TRAIN_KEY_VISITS = "train.key_visits"
MODEL_BYTES_WRITTEN = "train.model_bytes_written"
MANIFEST_EDITS = "manifest.edits_appended"
MANIFEST_EDITS_REPLAYED = "manifest.edits_replayed"
MANIFEST_SNAPSHOTS = "manifest.snapshots_written"
MANIFEST_TORN_TAILS = "manifest.torn_tails"
MODELS_PERSISTED = "persist.models_written"
MODELS_LOADED = "persist.models_loaded"
MODEL_BYTES_PERSISTED = "persist.model_bytes_written"
RECOVERY_MANIFEST_OPENS = "recovery.manifest_opens"
RECOVERY_SCANS = "recovery.directory_scans"
RECOVERY_FILES_GCED = "recovery.files_gced"
RECOVERY_TORN_TABLES = "recovery.torn_tables_quarantined"
FAULTS_INJECTED = "fault.injected"
FAULT_TRANSIENT_READS = "fault.transient_reads"
FAULT_BIT_ROT_BLOCKS = "fault.bit_rot_blocks"
FAULT_TORN_APPENDS = "fault.torn_appends"
FAULT_DISK_FULL = "fault.disk_full"
FAULT_POWER_CUTS = "fault.power_cuts"
RETRY_ATTEMPTS = "retry.attempts"
RETRY_SUCCESSES = "retry.successes"
RETRY_EXHAUSTED = "retry.exhausted"
QUARANTINED_BLOCKS = "quarantine.blocks"
QUARANTINED_TABLES = "quarantine.tables"
DEGRADED_ENTRIES = "degraded.entered"
DEGRADED_WRITES_REJECTED = "degraded.writes_rejected"
OVERLOAD_REQUESTS = "overload.requests"
OVERLOAD_ADMITTED = "overload.admitted"
OVERLOAD_SHED = "overload.shed"
OVERLOAD_EXPIRED_AT_DEQUEUE = "overload.expired_at_dequeue"
OVERLOAD_DEADLINE_EXCEEDED = "overload.deadline_exceeded"
OVERLOAD_COMPLETED = "overload.completed"
OVERLOAD_COMPLETED_LATE = "overload.completed_late"
OVERLOAD_FAILED = "overload.failed"
QUEUE_ENQUEUES = "queue.enqueues"
QUEUE_DELAY_US = "queue.delay_us"
BREAKER_OPENS = "breaker.opens"
BREAKER_HALF_OPENS = "breaker.half_opens"
BREAKER_CLOSES = "breaker.closes"
BREAKER_REJECTED = "breaker.rejected"
RETRY_CLIENT_RESUBMITS = "retry.client_resubmits"
RETRY_BUDGET_SPENT = "retry.budget_spent"
RETRY_BUDGET_DENIED = "retry.budget_denied"
REPL_FRAMES_SHIPPED = "repl.frames_shipped"
REPL_RECORDS_SHIPPED = "repl.records_shipped"
REPL_WRITES_ACKED = "repl.writes_acked"
REPL_WRITES_REJECTED = "repl.writes_rejected"
REPL_HINTS_QUEUED = "repl.hints_queued"
REPL_HINTS_REPLAYED = "repl.hints_replayed"
REPL_BACKPRESSURE = "repl.hint_backpressure"
REPL_HEARTBEATS = "repl.heartbeats"
REPL_HEARTBEAT_MISSES = "repl.heartbeat_misses"
REPL_REPLICA_DEATHS = "repl.replica_deaths"
REPL_PROMOTIONS = "repl.promotions"
REPL_CATCHUP_FRAMES = "repl.catchup_frames"
REPL_STALE_READS = "repl.follower_reads"
REPL_FRAMES_LOST = "repl.frames_lost"
REPL_RECORDS_LOST = "repl.records_lost"
REPL_RESYNCS = "repl.resyncs"
REPL_ANTIENTROPY_RUNS = "repl.antientropy_runs"
REPL_ANTIENTROPY_REPAIRED = "repl.antientropy_repaired"
SCRUB_TABLES_CHECKED = "scrub.tables_checked"
SCRUB_BLOCKS_CHECKED = "scrub.blocks_checked"
SCRUB_BLOCKS_BAD = "scrub.blocks_bad"
SCRUB_TABLES_REWRITTEN = "scrub.tables_rewritten"
SCRUB_TABLES_QUARANTINED = "scrub.tables_quarantined"
SCRUB_ENTRIES_LOST = "scrub.entries_lost"


def _registered_counter_names() -> FrozenSet[str]:
    """Every dotted counter-name constant defined in this module."""
    return frozenset(
        value for key, value in globals().items()
        if key.isupper() and not key.startswith("_")
        and isinstance(value, str) and "." in value)


#: The closed set of counter series the system may charge.  Call sites
#: import the constants above, so a typo'd name cannot exist in code
#: that uses them — and ``tests/test_stats.py`` runs a full workload
#: and asserts every counter charged at runtime is in this set, so a
#: stringly-typed charge sneaking in elsewhere fails CI instead of
#: silently creating a new series.
ALL_COUNTERS: FrozenSet[str] = _registered_counter_names()
