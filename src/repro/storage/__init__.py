"""Simulated storage substrate: block devices, cost model and stats.

This package is the reproduction's stand-in for the paper's NVMe SSD:
block-granular devices with pread semantics, raw I/O counters, and a
deterministic cost model calibrated against the paper's Table 1 that
turns those counters into simulated microseconds.
"""

from repro.storage.block_cache import CachedBlockDevice, LRUBlockCache
from repro.storage.block_device import (
    DEFAULT_BLOCK_SIZE,
    BlockDevice,
    FileBlockDevice,
    MemoryBlockDevice,
)
from repro.storage.cost_model import DEFAULT_COST_MODEL, CostModel
from repro.storage.faults import FaultPlan, FaultyBlockDevice
from repro.storage.profiles import PROFILES, get_profile, io_cpu_ratio
from repro.storage.retry import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.storage.stats import (
    COMPACTION_STAGES,
    READ_STAGES,
    Stage,
    Stats,
    StatsDelta,
    StatsSnapshot,
)

__all__ = [
    "BlockDevice",
    "MemoryBlockDevice",
    "FileBlockDevice",
    "CachedBlockDevice",
    "LRUBlockCache",
    "FaultPlan",
    "FaultyBlockDevice",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "DEFAULT_BLOCK_SIZE",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "PROFILES",
    "get_profile",
    "io_cpu_ratio",
    "Stats",
    "StatsSnapshot",
    "StatsDelta",
    "Stage",
    "READ_STAGES",
    "COMPACTION_STAGES",
]
