"""Block devices: the simulated disks SSTables live on.

The paper's implementation reads segments "from disk using the Linux
pread interface" (Section 4.2).  This module reproduces that interface
behind a :class:`BlockDevice` abstraction with two implementations:

* :class:`MemoryBlockDevice` — keeps file contents in ``bytearray``s.
  This is the default for experiments: reads are instant in wall-clock
  terms, but every call records how many 4 KiB blocks it touched, and
  the cost model converts those counts into simulated latency.
* :class:`FileBlockDevice` — backs files with a real directory and
  ``os.pread``, for users who want actual disk behaviour.

Both devices record raw I/O counters into a shared
:class:`~repro.storage.stats.Stats` registry.  *Time* is deliberately
not charged here: the caller knows whether a read belongs to the lookup
path or to a compaction, so stage attribution happens at the call site.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Dict, List, Optional

from repro.errors import FileNotFoundInDeviceError, StorageError
from repro.storage.stats import (
    BLOCKS_READ,
    BLOCKS_WRITTEN,
    BYTES_READ,
    BYTES_WRITTEN,
    READ_CALLS,
    WRITE_CALLS,
    Stats,
)

DEFAULT_BLOCK_SIZE = 4096


def _blocks_spanned(offset: int, length: int, block_size: int) -> int:
    """Number of ``block_size`` blocks covered by ``(offset, length)``."""
    if length <= 0:
        return 0
    first = offset // block_size
    last = (offset + length - 1) // block_size
    return last - first + 1


class BlockDevice(ABC):
    """Abstract flat-namespace file store with block-level accounting.

    Files are identified by string names.  Writers append sequentially
    (`append`), readers use positional reads (`pread`) exactly like the
    paper's testbed.  Every device carries a :class:`Stats` registry
    that accumulates raw I/O counters.
    """

    def __init__(self, *, block_size: int = DEFAULT_BLOCK_SIZE,
                 stats: Optional[Stats] = None) -> None:
        if block_size <= 0:
            raise StorageError(f"block size must be positive, got {block_size}")
        self.block_size = block_size
        self.stats = stats if stats is not None else Stats()

    # -- abstract primitive operations ---------------------------------

    @abstractmethod
    def create(self, name: str) -> None:
        """Create an empty file, truncating any existing one."""

    @abstractmethod
    def append(self, name: str, data: bytes) -> None:
        """Append ``data`` to the end of ``name``."""

    @abstractmethod
    def pread(self, name: str, offset: int, length: int) -> bytes:
        """Positional read of ``length`` bytes at ``offset``.

        Short reads past end-of-file return the available suffix, like
        POSIX ``pread``.
        """

    @abstractmethod
    def size(self, name: str) -> int:
        """Current length of ``name`` in bytes."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove ``name``; missing files raise."""

    @abstractmethod
    def rename(self, src: str, dst: str) -> None:
        """Atomically move ``src`` over ``dst`` (replacing it).

        The atomic-replace semantics (POSIX ``rename``) are what the
        manifest rewrite relies on for crash safety: observers see
        either the old ``dst`` or the complete new one, never a
        partial file.
        """

    @abstractmethod
    def exists(self, name: str) -> bool:
        """True when ``name`` is present on the device."""

    @abstractmethod
    def list_files(self) -> List[str]:
        """All file names on the device, sorted."""

    # -- cache-aware reads ---------------------------------------------

    def pread_cached(self, name: str, offset: int,
                     length: int) -> "tuple[bytes, float]":
        """Read like :meth:`pread`, also reporting the cache-hit fraction.

        The base devices have no cache tier, so the fraction is always
        0.0; :class:`~repro.storage.block_cache.CachedBlockDevice`
        overrides this so cache-aware call sites (the SSTable reader)
        can charge memory-copy instead of I/O time for hot blocks.
        """
        return self.pread(name, offset, length), 0.0

    def pread_uncached(self, name: str, offset: int, length: int) -> bytes:
        """Read like :meth:`pread`, bypassing any cache tier.

        For one-shot sequential reads of data that will never be read
        again (WAL replay), where admitting blocks would only evict
        hot SSTable blocks.  Identical to :meth:`pread` on the base
        devices.
        """
        return self.pread(name, offset, length)

    # -- shared accounting ---------------------------------------------

    def record_read(self, offset: int, length: int) -> int:
        """Record counters for one pread; returns blocks touched."""
        nblocks = _blocks_spanned(offset, length, self.block_size)
        self.stats.add(READ_CALLS)
        self.stats.add(BYTES_READ, length)
        self.stats.add(BLOCKS_READ, nblocks)
        return nblocks

    def record_write(self, length: int) -> int:
        """Record counters for one append; returns whole blocks written.

        Appends are sequential, so the block count is simply the payload
        size rounded up — callers charging write cost per block get the
        same totals the paper's sequential compaction writes produce.
        """
        nblocks = (length + self.block_size - 1) // self.block_size
        self.stats.add(WRITE_CALLS)
        self.stats.add(BYTES_WRITTEN, length)
        self.stats.add(BLOCKS_WRITTEN, nblocks)
        return nblocks

    def total_bytes(self) -> int:
        """Sum of all file sizes (the simulated disk footprint)."""
        return sum(self.size(name) for name in self.list_files())


class MemoryBlockDevice(BlockDevice):
    """An in-RAM block device; the default substrate for experiments.

    Contents live in per-file ``bytearray``s.  All I/O is counted but
    costs no wall-clock time, which keeps large parameter sweeps fast
    while the cost model supplies simulated latency.
    """

    def __init__(self, *, block_size: int = DEFAULT_BLOCK_SIZE,
                 stats: Optional[Stats] = None) -> None:
        super().__init__(block_size=block_size, stats=stats)
        self._files: Dict[str, bytearray] = {}

    def create(self, name: str) -> None:
        self._files[name] = bytearray()

    def append(self, name: str, data: bytes) -> None:
        try:
            self._files[name].extend(data)
        except KeyError:
            raise FileNotFoundInDeviceError(name) from None
        self.record_write(len(data))

    def pread(self, name: str, offset: int, length: int) -> bytes:
        try:
            buf = self._files[name]
        except KeyError:
            raise FileNotFoundInDeviceError(name) from None
        if offset < 0 or length < 0:
            raise StorageError(
                f"invalid pread range offset={offset} length={length}")
        data = bytes(buf[offset:offset + length])
        self.record_read(offset, len(data))
        return data

    def size(self, name: str) -> int:
        try:
            return len(self._files[name])
        except KeyError:
            raise FileNotFoundInDeviceError(name) from None

    def delete(self, name: str) -> None:
        try:
            del self._files[name]
        except KeyError:
            raise FileNotFoundInDeviceError(name) from None

    def rename(self, src: str, dst: str) -> None:
        try:
            self._files[dst] = self._files.pop(src)
        except KeyError:
            raise FileNotFoundInDeviceError(src) from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> List[str]:
        return sorted(self._files)


class FileBlockDevice(BlockDevice):
    """A block device backed by a real directory and ``os.pread``.

    Useful to sanity-check the simulation against actual disks; all the
    accounting of :class:`MemoryBlockDevice` still applies.
    """

    def __init__(self, directory: str, *,
                 block_size: int = DEFAULT_BLOCK_SIZE,
                 stats: Optional[Stats] = None) -> None:
        super().__init__(block_size=block_size, stats=stats)
        self.directory = directory
        os.makedirs(directory, exist_ok=True)

    def _path(self, name: str) -> str:
        if "/" in name or name in ("", ".", ".."):
            raise StorageError(f"invalid file name: {name!r}")
        return os.path.join(self.directory, name)

    def create(self, name: str) -> None:
        with open(self._path(name), "wb"):
            pass

    def append(self, name: str, data: bytes) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            raise FileNotFoundInDeviceError(name)
        with open(path, "ab") as fh:
            fh.write(data)
        self.record_write(len(data))

    def pread(self, name: str, offset: int, length: int) -> bytes:
        path = self._path(name)
        if not os.path.exists(path):
            raise FileNotFoundInDeviceError(name)
        if offset < 0 or length < 0:
            raise StorageError(
                f"invalid pread range offset={offset} length={length}")
        fd = os.open(path, os.O_RDONLY)
        try:
            data = os.pread(fd, length, offset)
        finally:
            os.close(fd)
        self.record_read(offset, len(data))
        return data

    def size(self, name: str) -> int:
        path = self._path(name)
        if not os.path.exists(path):
            raise FileNotFoundInDeviceError(name)
        return os.path.getsize(path)

    def delete(self, name: str) -> None:
        path = self._path(name)
        if not os.path.exists(path):
            raise FileNotFoundInDeviceError(name)
        os.remove(path)

    def rename(self, src: str, dst: str) -> None:
        src_path = self._path(src)
        if not os.path.exists(src_path):
            raise FileNotFoundInDeviceError(src)
        os.replace(src_path, self._path(dst))

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def list_files(self) -> List[str]:
        return sorted(os.listdir(self.directory))
