"""Benchmark: regenerate Figure 8 (index granularity)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import fig8_granularity


def test_fig8_granularity(benchmark, bench_scale):
    result = run_once(benchmark, fig8_granularity.run, scale=bench_scale)
    assert_checks(result)
