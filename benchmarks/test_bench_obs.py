"""Benchmark: observability study (trace sampling x granularity)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import obs_study


def test_obs_study(benchmark, bench_scale):
    result = run_once(benchmark, obs_study.run, scale=bench_scale)
    assert_checks(result)
