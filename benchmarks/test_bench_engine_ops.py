"""Micro-benchmarks: end-to-end engine operations (put/get/scan).

Wall-clock throughput of the LSM engine itself — the substrate every
experiment runs on.  Useful for spotting regressions in the write path,
point-lookup path and iterator machinery.
"""

import random

import pytest

from repro.indexes.registry import IndexKind
from repro.lsm.db import LSMTree
from repro.lsm.options import small_test_options

_N = 2_000


def _loaded_db(kind=IndexKind.PGM):
    db = LSMTree(small_test_options(index_kind=kind))
    rng = random.Random(5)
    keys = rng.sample(range(1, 1 << 40), _N)
    for i, key in enumerate(keys):
        db.put(key, b"v%d" % i)
    db.flush()
    return db, keys


def test_put_throughput(benchmark):
    def fill():
        db = LSMTree(small_test_options())
        rng = random.Random(7)
        for i, key in enumerate(rng.sample(range(1, 1 << 40), _N)):
            db.put(key, b"v%d" % i)
        db.close()

    benchmark.pedantic(fill, rounds=3, iterations=1)


@pytest.mark.parametrize("kind", [IndexKind.FP, IndexKind.PGM,
                                  IndexKind.RMI],
                         ids=lambda kind: kind.value)
def test_get_throughput(benchmark, kind):
    db, keys = _loaded_db(kind)
    rng = random.Random(9)
    probes = [keys[rng.randrange(len(keys))] for _ in range(256)]

    def lookups():
        for probe in probes:
            db.get(probe)

    benchmark(lookups)
    db.close()


def test_scan_throughput(benchmark):
    db, keys = _loaded_db()
    starts = sorted(keys)[:: max(1, len(keys) // 16)]

    def scans():
        for start in starts:
            db.scan(start, 50)

    benchmark(scans)
    db.close()
