"""Benchmark: recovery study (manifest + persisted models vs scan)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import recovery_study


def test_recovery_study(benchmark, bench_scale):
    result = run_once(benchmark, recovery_study.run, scale=bench_scale)
    assert_checks(result)
