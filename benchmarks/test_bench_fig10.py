"""Benchmark: regenerate Figure 10 (per-level read overhead)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import fig10_level_overhead


def test_fig10_level_overhead(benchmark, bench_scale):
    result = run_once(benchmark, fig10_level_overhead.run, scale=bench_scale)
    assert_checks(result)
