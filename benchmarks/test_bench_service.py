"""Benchmark: serving-layer study (cache, shards, batching)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import service_study


def test_service_study(benchmark, bench_scale):
    result = run_once(benchmark, service_study.run, scale=bench_scale)
    assert_checks(result)
