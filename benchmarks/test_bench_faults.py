"""Benchmark: fault injection, degraded availability and scrub repair."""

from conftest import assert_checks, run_once

from repro.bench.experiments import faults_study


def test_faults_study(benchmark, bench_scale):
    result = run_once(benchmark, faults_study.run, scale=bench_scale)
    assert_checks(result)
