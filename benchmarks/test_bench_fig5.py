"""Benchmark: regenerate Figure 5 (dataset CDFs)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import fig5_dataset_cdfs


def test_fig5_dataset_cdfs(benchmark, bench_scale):
    result = run_once(benchmark, fig5_dataset_cdfs.run, scale=bench_scale)
    assert_checks(result)
    assert len(result.tables[0][1].rows) == 7  # all seven datasets
