"""Benchmark: regenerate Figure 7 (query time breakdown)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import fig7_breakdown


def test_fig7_breakdown(benchmark, bench_scale):
    result = run_once(benchmark, fig7_breakdown.run, scale=bench_scale)
    assert_checks(result)
