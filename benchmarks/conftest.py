"""Shared configuration for the paper-reproduction benchmark suite.

Every ``test_bench_*`` file regenerates one table or figure from the
paper at ``smoke`` scale (seconds each; pass ``--bench-scale small`` for
the fuller sweep), asserts the paper's qualitative shape checks, and
reports wall time through pytest-benchmark.  Experiments are expensive,
so each benchmark runs exactly one round.
"""

from __future__ import annotations

import pytest

from repro.bench.report import ExperimentResult
from repro.bench.runner import get_scale


def pytest_addoption(parser):
    parser.addoption("--bench-scale", action="store", default="smoke",
                     help="experiment scale preset (smoke/small/medium)")


@pytest.fixture(scope="session")
def bench_scale(request):
    """The Scale preset benchmarks run at."""
    return get_scale(request.config.getoption("--bench-scale"))


def run_once(benchmark, fn, *args, **kwargs) -> ExperimentResult:
    """Execute an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)


def assert_checks(result: ExperimentResult, ignore=()):
    """Fail the benchmark when paper shape checks did not hold."""
    failures = [check for check in result.failed_checks()
                if not any(token in check.name for token in ignore)]
    assert not failures, "\n" + result.render()
