"""Benchmark: per-shard replication — failover, durability, availability."""

from conftest import assert_checks, run_once

from repro.bench.experiments import replication_study


def test_replication_study(benchmark, bench_scale):
    result = run_once(benchmark, replication_study.run, scale=bench_scale)
    assert_checks(result)
