"""Benchmark: open-loop overload — goodput, shedding, retry budgets."""

from conftest import assert_checks, run_once

from repro.bench.experiments import overload_study


def test_overload_study(benchmark, bench_scale):
    result = run_once(benchmark, overload_study.run, scale=bench_scale)
    assert_checks(result)
