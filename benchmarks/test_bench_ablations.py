"""Benchmark: parameter ablations (the paper's settings choices)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import ablations


def test_ablations(benchmark, bench_scale):
    result = run_once(benchmark, ablations.run, scale=bench_scale)
    assert_checks(result)
    assert len(result.tables) == 4
