"""Benchmark: regenerate Figure 6 (latency & memory vs boundary).

The headline sweep: all seven index types crossed with the paper's
position boundaries on the Random dataset.  Asserts Observations 1
and 2 (boundary dominates latency; FP worst memory; PGM/RMI best;
diminishing returns at the I/O plateau).
"""

from conftest import assert_checks, run_once

from repro.bench.experiments import fig6_boundary_sweep


def test_fig6_boundary_sweep(benchmark, bench_scale):
    result = run_once(benchmark, fig6_boundary_sweep.run, scale=bench_scale)
    assert_checks(result)
    table = result.tables[0][1]
    assert len(table.rows) == 7 * 6  # kinds x boundaries
