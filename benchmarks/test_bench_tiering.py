"""Benchmark: leveling vs tiering study (Section 6.2 extension)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import tiering_study


def test_tiering_study(benchmark, bench_scale):
    result = run_once(benchmark, tiering_study.run, scale=bench_scale)
    assert_checks(result)
