"""Benchmark: regenerate Figure 11 (range lookups)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import fig11_range_lookup


def test_fig11_range_lookup(benchmark, bench_scale):
    result = run_once(benchmark, fig11_range_lookup.run, scale=bench_scale)
    assert_checks(result)
