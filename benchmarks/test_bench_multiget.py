"""Benchmark: MultiGet study (batched reads, coalesced segments)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import multiget_study


def test_multiget_study(benchmark, bench_scale):
    result = run_once(benchmark, multiget_study.run, scale=bench_scale)
    assert_checks(result)
