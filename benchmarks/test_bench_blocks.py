"""Benchmark: block-format study (block size x compression x checksums)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import blocks_study


def test_blocks_study(benchmark, bench_scale):
    result = run_once(benchmark, blocks_study.run, scale=bench_scale)
    assert_checks(result)
