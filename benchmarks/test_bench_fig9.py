"""Benchmark: regenerate Figure 9 (compaction time and breakdown)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import fig9_compaction


def test_fig9_compaction(benchmark, bench_scale):
    result = run_once(benchmark, fig9_compaction.run, scale=bench_scale)
    assert_checks(result)
