"""Benchmark: hardware-profile sensitivity study."""

from conftest import assert_checks, run_once

from repro.bench.experiments import hardware_study


def test_hardware_study(benchmark, bench_scale):
    result = run_once(benchmark, hardware_study.run, scale=bench_scale)
    assert_checks(result)
