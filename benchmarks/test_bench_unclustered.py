"""Benchmark: the Section 3.3 clustered-vs-unclustered study."""

from conftest import assert_checks, run_once

from repro.bench.experiments import unclustered_study


def test_unclustered_study(benchmark, bench_scale):
    result = run_once(benchmark, unclustered_study.run, scale=bench_scale)
    assert_checks(result)
