"""Micro-benchmarks: index build and lookup throughput per index type.

Not a paper figure, but the primitive costs behind Figures 6/9: how
fast each index trains over a table-sized key array and how fast it
answers position queries.  pytest-benchmark's statistics make these the
regression canaries for the index implementations.
"""

import random

import pytest

from repro.indexes.registry import ALL_KINDS, IndexFactory
from repro.workloads.datasets import generate

_BOUNDARY = 32


@pytest.fixture(scope="module")
def table_keys(request):
    return generate("random", 8_000, seed=3)


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda kind: kind.value)
def test_build_throughput(benchmark, kind, table_keys):
    factory = IndexFactory(kind, _BOUNDARY)
    index = benchmark(factory.build, table_keys)
    assert index.is_built
    assert index.size_bytes() > 0


@pytest.mark.parametrize("kind", ALL_KINDS, ids=lambda kind: kind.value)
def test_lookup_throughput(benchmark, kind, table_keys):
    factory = IndexFactory(kind, _BOUNDARY)
    index = factory.build(table_keys)
    rng = random.Random(11)
    probes = [table_keys[rng.randrange(len(table_keys))]
              for _ in range(512)]

    def run_lookups():
        for probe in probes:
            index.lookup(probe)

    benchmark(run_lookups)
