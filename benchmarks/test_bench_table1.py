"""Benchmark: regenerate Table 1 (PLR point-lookup stage times)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import table1_stage_times


def test_table1_stage_times(benchmark, bench_scale):
    result = run_once(benchmark, table1_stage_times.run, scale=bench_scale)
    assert_checks(result)
    table = result.tables[0][1]
    assert table.column("process") == [
        "Table Lookup", "Prediction", "Disk I/O", "Binary Search"]
