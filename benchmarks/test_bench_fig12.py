"""Benchmark: regenerate Figure 12 (YCSB workloads A-F)."""

from conftest import assert_checks, run_once

from repro.bench.experiments import fig12_ycsb


def test_fig12_ycsb(benchmark, bench_scale):
    result = run_once(benchmark, fig12_ycsb.run, scale=bench_scale)
    assert_checks(result)
    assert len(result.tables) == 6  # workloads A-F
